"""Low-level bit utilities shared by every DBI scheme.

The whole library manipulates small fixed-width integers that model the
voltage state of the memory-interface lanes.  This module centralises the
conventions:

* A **byte** is an ``int`` in ``[0, 255]``; bit *j* is the state of lane
  DQ\\ *j* during one beat of the burst.
* A **word** is the 9-bit quantity actually on the wire: bits 0-7 carry the
  (possibly inverted) data byte and bit 8 carries the DBI lane.  Following
  the JEDEC/paper convention, DBI = 1 means the byte is transmitted as-is
  and DBI = 0 means the byte is transmitted inverted.
* Before a burst starts, every lane idles high (transmitting ones); the
  corresponding word is :data:`ALL_ONES_WORD`.

These functions are deliberately tiny and allocation-free so they can be
used in the inner loops of the trellis search and the bus simulator.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

#: Number of data lanes grouped under one DBI lane (JEDEC DBI granularity).
BYTE_WIDTH = 8

#: Total lanes per byte group: eight DQ lanes plus the DBI lane.
WORD_WIDTH = BYTE_WIDTH + 1

#: Mask selecting the data byte from a word.
BYTE_MASK = (1 << BYTE_WIDTH) - 1

#: Mask selecting all nine lanes of a word.
WORD_MASK = (1 << WORD_WIDTH) - 1

#: Bit position of the DBI lane inside a word.
DBI_BIT = 1 << BYTE_WIDTH

#: Idle bus state: every DQ lane and the DBI lane driven high.
ALL_ONES_WORD = WORD_MASK


def popcount(value: int) -> int:
    """Return the number of set bits in a non-negative integer.

    >>> popcount(0b1011)
    3
    """
    if value < 0:
        raise ValueError(f"popcount requires a non-negative integer, got {value}")
    return bin(value).count("1")


def invert_byte(byte: int) -> int:
    """Return the bitwise complement of *byte* within 8 bits.

    >>> invert_byte(0b10001110) == 0b01110001
    True
    """
    check_byte(byte)
    return byte ^ BYTE_MASK


def check_byte(byte: int) -> int:
    """Validate that *byte* fits in 8 bits and return it unchanged."""
    if not isinstance(byte, int) or isinstance(byte, bool):
        raise TypeError(f"byte must be an int, got {type(byte).__name__}")
    if not 0 <= byte <= BYTE_MASK:
        raise ValueError(f"byte out of range [0, {BYTE_MASK}]: {byte}")
    return byte


def check_word(word: int) -> int:
    """Validate that *word* fits in 9 bits and return it unchanged."""
    if not isinstance(word, int) or isinstance(word, bool):
        raise TypeError(f"word must be an int, got {type(word).__name__}")
    if not 0 <= word <= WORD_MASK:
        raise ValueError(f"word out of range [0, {WORD_MASK}]: {word}")
    return word


def make_word(byte: int, inverted: bool) -> int:
    """Assemble the 9-bit wire word for *byte* with the given invert flag.

    The data lanes carry the inverted byte when *inverted* is true, and the
    DBI lane carries 0 for inverted / 1 for non-inverted transmission.

    >>> make_word(0x00, inverted=False) == 0x100
    True
    >>> make_word(0x00, inverted=True) == 0x0FF
    True
    """
    check_byte(byte)
    if inverted:
        return byte ^ BYTE_MASK
    return byte | DBI_BIT


def word_byte(word: int) -> int:
    """Return the raw 8 data-lane bits of a wire word (no decoding)."""
    check_word(word)
    return word & BYTE_MASK


def word_dbi(word: int) -> int:
    """Return the DBI lane bit (1 = non-inverted, 0 = inverted)."""
    check_word(word)
    return (word >> BYTE_WIDTH) & 1


def decode_word(word: int) -> int:
    """Recover the original data byte from a wire word.

    This is the receiver-side DBI decode shared by every scheme: if the DBI
    lane is low the data lanes are complemented, otherwise passed through.

    >>> decode_word(make_word(0xA5, inverted=True))
    165
    """
    check_word(word)
    byte = word & BYTE_MASK
    if word & DBI_BIT:
        return byte
    return byte ^ BYTE_MASK


def zeros_in_word(word: int) -> int:
    """Number of lanes driving a zero for one beat (DC cost contributor).

    Counted over all nine lanes, matching the paper's accounting where the
    extra zero on the DBI lane of an inverted byte is charged to the code.
    """
    check_word(word)
    return WORD_WIDTH - popcount(word)


def zeros_in_byte(byte: int) -> int:
    """Number of zero bits in a bare data byte (before DBI encoding)."""
    check_byte(byte)
    return BYTE_WIDTH - popcount(byte)


def transitions(prev_word: int, word: int) -> int:
    """Number of lanes that toggle between two consecutive beats.

    Counted over all nine lanes, including the DBI lane itself (AC cost
    contributor).

    >>> transitions(ALL_ONES_WORD, ALL_ONES_WORD)
    0
    >>> transitions(0x1FF, 0x000)
    9
    """
    check_word(prev_word)
    check_word(word)
    return popcount(prev_word ^ word)


def parse_bits(text: str) -> int:
    """Parse an MSB-first bit string such as ``"10001110"`` into an int.

    Spaces and underscores are ignored so figures can be transcribed
    verbatim from the paper.

    >>> parse_bits("1000 1110")
    142
    """
    cleaned = text.replace(" ", "").replace("_", "")
    if not cleaned:
        raise ValueError("empty bit string")
    if set(cleaned) - {"0", "1"}:
        raise ValueError(f"bit string may contain only 0/1: {text!r}")
    return int(cleaned, 2)


def format_bits(value: int, width: int = BYTE_WIDTH) -> str:
    """Format *value* as an MSB-first bit string of the given width.

    >>> format_bits(142)
    '10001110'
    """
    if value < 0:
        raise ValueError("value must be non-negative")
    if value >> width:
        raise ValueError(f"value {value} does not fit in {width} bits")
    return format(value, f"0{width}b")


def bytes_to_lanes(data: Sequence[int]) -> List[int]:
    """Transpose a byte sequence into per-lane waveforms.

    Element *j* of the result is an integer whose bit *i* is the state of
    lane DQ\\ *j* during beat *i*.  Useful for lane-centric analyses such as
    per-wire toggle statistics.

    >>> bytes_to_lanes([0b1, 0b0, 0b1])
    [5, 0, 0, 0, 0, 0, 0, 0]
    """
    lanes = [0] * BYTE_WIDTH
    for beat, byte in enumerate(data):
        check_byte(byte)
        for lane in range(BYTE_WIDTH):
            if byte & (1 << lane):
                lanes[lane] |= 1 << beat
    return lanes


def iter_bits(value: int, width: int) -> Iterator[int]:
    """Yield the bits of *value* LSB-first over *width* positions."""
    if value < 0:
        raise ValueError("value must be non-negative")
    for position in range(width):
        yield (value >> position) & 1


def hamming_weight_table(width: int) -> List[int]:
    """Precompute popcounts for all integers below ``2**width``.

    Handy for vectorised workloads sweeps; table[i] == popcount(i).
    """
    if width < 0:
        raise ValueError("width must be non-negative")
    size = 1 << width
    table = [0] * size
    for value in range(1, size):
        table[value] = table[value >> 1] + (value & 1)
    return table


def total_zeros(words: Iterable[int]) -> int:
    """Sum of :func:`zeros_in_word` over a word sequence."""
    return sum(zeros_in_word(word) for word in words)


def total_transitions(words: Sequence[int], prev_word: int = ALL_ONES_WORD) -> int:
    """Sum of lane toggles over a word sequence starting from *prev_word*."""
    count = 0
    last = prev_word
    for word in words:
        count += transitions(last, word)
        last = word
    return count
