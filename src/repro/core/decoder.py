"""Receiver-side DBI decoding.

One of DBI's selling points (and the reason the paper's scheme is drop-in
compatible with existing GDDR5/DDR4 devices) is that the decode step is
identical for every encoding policy: if the DBI lane is low, complement the
data lanes; otherwise pass them through.  This module provides that decode
for single words, whole bursts and word streams, plus integrity checks used
throughout the test-suite.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .bitops import decode_word, word_dbi
from .burst import Burst
from .schemes import EncodedBurst


def decode_words(words: Sequence[int]) -> Burst:
    """Decode a sequence of 9-bit wire words into the original burst.

    >>> from .bitops import make_word
    >>> decode_words([make_word(0x12, False), make_word(0x34, True)]).data
    (18, 52)
    """
    return Burst(decode_word(word) for word in words)


def decode_stream(encoded: Iterable[EncodedBurst]) -> List[Burst]:
    """Decode a stream of encoded bursts (order-preserving)."""
    return [burst.decode() for burst in encoded]


def invert_flags_from_words(words: Sequence[int]) -> List[bool]:
    """Recover the encoder's invert decisions from the wire words."""
    return [word_dbi(word) == 0 for word in words]


def verify_round_trip(encoded: EncodedBurst) -> bool:
    """True iff decoding reproduces the original data exactly."""
    return encoded.decode().data == encoded.burst.data


def verify_stream(encoded: Iterable[EncodedBurst]) -> bool:
    """True iff every burst of a stream round-trips."""
    return all(verify_round_trip(burst) for burst in encoded)
