"""Common interface for every DBI encoding scheme plus a registry.

Every scheme — the paper's optimal encoders as well as all baselines —
implements :class:`DbiScheme`: it maps a :class:`~repro.core.burst.Burst`
to an :class:`EncodedBurst` describing exactly which bytes are inverted and
what ends up on the wire.  All figures and tables of the paper are produced
by running registered schemes through the same simulation harness.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from .bitops import (
    ALL_ONES_WORD,
    check_word,
    decode_word,
    make_word,
    total_transitions,
    total_zeros,
)
from .burst import Burst
from .costs import CostModel
from .vectorized import try_vector_pack


@dataclass(frozen=True)
class EncodedBurst:
    """The result of DBI-encoding one burst.

    Attributes
    ----------
    burst:
        The original data.
    invert_flags:
        Per-byte invert decision (True = transmitted inverted, DBI lane 0).
    words:
        The 9-bit wire words actually transmitted (derived, cached).
    prev_word:
        Bus state before the first beat (idle-high by default).
    """

    burst: Burst
    invert_flags: Tuple[bool, ...]
    prev_word: int = ALL_ONES_WORD

    def __post_init__(self) -> None:
        if len(self.invert_flags) != len(self.burst):
            raise ValueError(
                f"{len(self.invert_flags)} invert flags for {len(self.burst)} bytes"
            )
        check_word(self.prev_word)

    @property
    def words(self) -> Tuple[int, ...]:
        """The 9-bit words on the wire, in transmission order."""
        return tuple(
            make_word(byte, inverted)
            for byte, inverted in zip(self.burst, self.invert_flags)
        )

    def __len__(self) -> int:
        return len(self.burst)

    def __iter__(self) -> Iterator[int]:
        return iter(self.words)

    # -- activity statistics ----------------------------------------------
    def zeros(self) -> int:
        """Total zero-lane-beats over the burst (all 9 lanes)."""
        return total_zeros(self.words)

    def transitions(self) -> int:
        """Total lane toggles over the burst, from the idle/previous state."""
        return total_transitions(self.words, self.prev_word)

    def activity(self) -> Tuple[int, int]:
        """``(transitions, zeros)`` pair — the coordinates of Fig. 2's labels."""
        return self.transitions(), self.zeros()

    def cost(self, model: CostModel) -> float:
        """Burst cost under a :class:`~repro.core.costs.CostModel`."""
        n_transitions, n_zeros = self.activity()
        return model.activity_cost(n_transitions, n_zeros)

    def decode(self) -> Burst:
        """Receiver-side decode; must always round-trip to ``burst``."""
        return Burst(decode_word(word) for word in self.words)

    def last_word(self) -> int:
        """Bus state after the burst (feeds the next burst's boundary)."""
        return self.words[-1]

    def verify(self) -> None:
        """Raise ``AssertionError`` unless the encoding round-trips."""
        decoded = self.decode()
        if decoded.data != self.burst.data:
            raise AssertionError(
                f"DBI round-trip failed: sent {self.burst.data}, decoded {decoded.data}"
            )


class DbiScheme(abc.ABC):
    """Abstract DBI encoding policy.

    Subclasses decide, for each byte of a burst, whether to invert it.
    Implementations must be deterministic and stateless across calls; any
    inter-burst state (the previous bus word) is passed explicitly so the
    simulation harness can chain bursts.
    """

    #: Short identifier used in tables, plots and the registry.
    name: str = "abstract"

    #: Whether the invert decisions depend on the incoming bus state.
    #: State-free schemes (RAW, DBI DC) stay fully vectorizable even in
    #: chained transmission mode.
    stateful_flags: bool = True

    @abc.abstractmethod
    def encode(self, burst: Burst, prev_word: int = ALL_ONES_WORD) -> EncodedBurst:
        """Encode one burst given the previous bus state."""

    def fingerprint(self) -> str:
        """Stable content key for this scheme's encoding decisions.

        Two instances with equal fingerprints must produce identical
        invert decisions for every burst encoded from the idle bus, so
        population activity totals may be shared between them — this is
        the scheme half of the experiment engine's activity-cache key
        (:class:`repro.sim.experiments.ActivityCache`).  The default, the
        registry name, is correct for parameterless schemes; schemes with
        decision-relevant parameters must extend it (see
        :meth:`repro.core.encoder.DbiOptimal.fingerprint`).
        """
        return self.name

    def encode_stream(self, bursts: List[Burst],
                      prev_word: int = ALL_ONES_WORD) -> List[EncodedBurst]:
        """Encode a sequence of bursts, threading bus state between them."""
        encoded: List[EncodedBurst] = []
        state = prev_word
        for burst in bursts:
            result = self.encode(burst, prev_word=state)
            encoded.append(result)
            state = result.last_word()
        return encoded

    # -- batch API ---------------------------------------------------------
    def batch_flags(self, data, prev_words):
        """Vector kernel: invert flags for a packed ``(batch, n)`` array.

        ``data`` is a ``uint8`` array (one burst per row), ``prev_words``
        a ``(batch,)`` array of per-row boundary words.  Returns a
        ``(batch, n)`` bool array bit-identical to calling :meth:`encode`
        row by row.  Schemes without a vector kernel leave this
        unimplemented and :meth:`encode_batch` falls back to the
        reference per-burst path.
        """
        raise NotImplementedError(f"{type(self).__name__} has no vector kernel")

    def supports_batch(self) -> bool:
        """True when this scheme provides a vectorized :meth:`batch_flags`."""
        return type(self).batch_flags is not DbiScheme.batch_flags

    def encode_batch(self, bursts: Iterable[Burst],
                     prev_word: int = ALL_ONES_WORD,
                     backend: Optional[str] = None) -> List[EncodedBurst]:
        """Encode a whole burst population (independent boundaries).

        With the ``vector`` backend (the default whenever NumPy is
        available) equal-length populations are encoded array-at-a-time
        through :meth:`batch_flags`; ragged populations, schemes without
        a kernel, and the ``reference`` backend use the per-burst path.
        Results are identical either way.
        """
        burst_list = list(bursts)
        data = try_vector_pack(self, burst_list, backend) if burst_list else None
        if data is not None:
            import numpy as np

            prev = np.full(data.shape[0], prev_word, dtype=np.int64)
            flags = self.batch_flags(data, prev)
            return [
                EncodedBurst(burst=burst,
                             invert_flags=tuple(map(bool, row)),
                             prev_word=prev_word)
                for burst, row in zip(burst_list, flags)
            ]
        return [self.encode(burst, prev_word=prev_word) for burst in burst_list]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


#: Global scheme registry: name -> zero-argument factory.
_REGISTRY: Dict[str, Callable[[], DbiScheme]] = {}


def register_scheme(name: str, factory: Callable[[], DbiScheme]) -> None:
    """Register a scheme factory under *name* (overwrites silently)."""
    if not name:
        raise ValueError("scheme name must be non-empty")
    _REGISTRY[name] = factory


def get_scheme(name: str) -> DbiScheme:
    """Instantiate a registered scheme by name.

    >>> get_scheme("dbi-dc").name
    'dbi-dc'
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown scheme {name!r}; known schemes: {known}") from None
    return factory()

def available_schemes() -> List[str]:
    """Names of all registered schemes, sorted."""
    return sorted(_REGISTRY)
