"""Cost models mapping lane activity to abstract energy.

The paper expresses the per-burst cost of an encoding as::

    cost = alpha * (number of lane transitions) + beta * (number of zeros)

``alpha`` captures the dynamic (AC) energy of a lane toggle and ``beta`` the
DC termination energy of driving a zero for one beat.  Only the ratio
``alpha/beta`` matters for which encoding is optimal (uniform scaling of
edge weights never changes a shortest path), which the paper exploits to
build fixed- and small-integer-coefficient hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .bitops import transitions, zeros_in_word


@dataclass(frozen=True)
class CostModel:
    """Weights for the two energy contributors of a POD interface.

    Parameters
    ----------
    alpha:
        Cost of one lane transition (AC component).
    beta:
        Cost of transmitting one zero for one beat (DC component).

    >>> CostModel.dc_only().word_cost(0x1FF, 0x0FF)
    1.0
    """

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValueError(
                f"cost coefficients must be non-negative, got alpha={self.alpha}, beta={self.beta}"
            )
        if self.alpha == 0 and self.beta == 0:
            raise ValueError("at least one of alpha/beta must be positive")

    # -- constructors ----------------------------------------------------
    @classmethod
    def fixed(cls) -> "CostModel":
        """The paper's DBI OPT (Fixed) setting: alpha = beta = 1."""
        return cls(1.0, 1.0)

    @classmethod
    def dc_only(cls) -> "CostModel":
        """Count only zeros — makes the optimum coincide with DBI DC."""
        return cls(0.0, 1.0)

    @classmethod
    def ac_only(cls) -> "CostModel":
        """Count only transitions — makes the optimum coincide with DBI AC."""
        return cls(1.0, 0.0)

    @classmethod
    def from_ac_fraction(cls, ac_cost: float) -> "CostModel":
        """The sweep parameterisation of Figs. 3/4: alpha=ac, beta=1-ac."""
        if not 0.0 <= ac_cost <= 1.0:
            raise ValueError(f"ac_cost must be within [0, 1], got {ac_cost}")
        return cls(ac_cost, 1.0 - ac_cost)

    @classmethod
    def from_energies(cls, energy_per_transition: float, energy_per_zero: float) -> "CostModel":
        """Physical coefficients straight from a :mod:`repro.phy.power` model."""
        return cls(energy_per_transition, energy_per_zero)

    # -- derived quantities ----------------------------------------------
    @property
    def ac_fraction(self) -> float:
        """alpha / (alpha + beta) — the x-axis of the paper's Figs. 3/4."""
        return self.alpha / (self.alpha + self.beta)

    def word_cost(self, prev_word: int, word: int) -> float:
        """Cost of transmitting *word* right after *prev_word*.

        This is exactly the weight of one trellis edge (paper Fig. 2).
        """
        return self.alpha * transitions(prev_word, word) + self.beta * zeros_in_word(word)

    def activity_cost(self, n_transitions: int, n_zeros: int) -> float:
        """Cost of an already-tallied activity pair."""
        if n_transitions < 0 or n_zeros < 0:
            raise ValueError("activity counts must be non-negative")
        return self.alpha * n_transitions + self.beta * n_zeros

    def scaled(self, factor: float) -> "CostModel":
        """Uniformly scale both coefficients (optimal encodings unchanged)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return CostModel(self.alpha * factor, self.beta * factor)

    def quantized(self, bits: int) -> "QuantizedCostModel":
        """Round to *bits*-bit integer coefficients (the paper's HW variant)."""
        return QuantizedCostModel.from_cost_model(self, bits)


@dataclass(frozen=True)
class QuantizedCostModel(CostModel):
    """Integer-coefficient cost model matching the configurable hardware.

    The paper's configurable encoder stores alpha and beta as 3-bit
    integers.  Quantisation preserves the coefficient *ratio* as well as
    possible; the class records the quantisation error so the ablation
    bench can report it.
    """

    bits: int = 3
    target_ac_fraction: float = -1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.bits < 1:
            raise ValueError("bits must be >= 1")
        limit = (1 << self.bits) - 1
        for name, value in (("alpha", self.alpha), ("beta", self.beta)):
            if value != int(value):
                raise ValueError(f"{name} must be an integer, got {value}")
            if not 0 <= value <= limit:
                raise ValueError(f"{name}={value} does not fit in {self.bits} bits")
        if self.target_ac_fraction < 0:
            object.__setattr__(self, "target_ac_fraction", self.ac_fraction)

    @classmethod
    def from_cost_model(cls, model: CostModel, bits: int = 3) -> "QuantizedCostModel":
        """Best integer approximation of *model* with *bits*-bit coefficients.

        Scans all representable (alpha, beta) pairs and returns the one whose
        AC fraction is closest to the target — the scale-invariance of the
        shortest path means only the ratio matters.  Ties prefer smaller
        coefficients (cheaper hardware datapath).
        """
        if bits < 1:
            raise ValueError("bits must be >= 1")
        limit = (1 << bits) - 1
        target = model.ac_fraction
        best_key: Tuple[float, int, int] = (float("inf"), 0, 0)
        best_pair = (1, 1)
        for alpha in range(limit + 1):
            for beta in range(limit + 1):
                if alpha == 0 and beta == 0:
                    continue
                fraction = alpha / (alpha + beta)
                key = (abs(fraction - target), alpha + beta, alpha)
                if key < best_key:
                    best_key = key
                    best_pair = (alpha, beta)
        alpha, beta = best_pair
        return cls(float(alpha), float(beta), bits=bits, target_ac_fraction=target)

    @property
    def quantization_error(self) -> float:
        """Absolute error of the achieved AC fraction versus the target."""
        return abs(self.ac_fraction - self.target_ac_fraction)
