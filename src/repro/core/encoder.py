"""The paper's encoders: DBI OPT and DBI OPT (Fixed).

:class:`DbiOptimal` wraps the trellis shortest-path search
(:mod:`repro.core.trellis`) behind the common :class:`~repro.core.schemes.DbiScheme`
interface.  Three flavours are provided, mirroring the paper's design
space:

* ``DbiOptimal(model)`` — arbitrary real coefficients (the algorithmic
  upper bound, "OPT" in Figs. 3/4/7).
* ``DbiOptimalFixed()`` — alpha = beta = 1, the paper's cheap hardware
  variant ("OPT (Fixed)").
* ``DbiOptimalQuantized(model, bits)`` — small-integer coefficients, the
  configurable 3-bit hardware of Table I.
"""

from __future__ import annotations

from .bitops import ALL_ONES_WORD
from .burst import Burst
from .costs import CostModel, QuantizedCostModel
from .schemes import DbiScheme, EncodedBurst, register_scheme
from .trellis import solve


class DbiOptimal(DbiScheme):
    """Minimum-energy DBI encoding for a configurable cost model.

    >>> from repro.core import Burst, CostModel
    >>> scheme = DbiOptimal(CostModel.fixed())
    >>> encoded = scheme.encode(Burst([0x00] * 4))
    >>> all(encoded.invert_flags)
    True
    """

    name = "dbi-opt"

    def __init__(self, model: CostModel):
        if not isinstance(model, CostModel):
            raise TypeError(f"model must be a CostModel, got {type(model).__name__}")
        self.model = model

    def encode(self, burst: Burst, prev_word: int = ALL_ONES_WORD) -> EncodedBurst:
        solution = solve(burst, self.model, prev_word=prev_word)
        return EncodedBurst(burst=burst, invert_flags=solution.invert_flags,
                            prev_word=prev_word)

    def batch_flags(self, data, prev_words):
        from .vectorized import solve_batch

        flags, _costs = solve_batch(data, self.model, prev_words=prev_words)
        return flags

    def fingerprint(self) -> str:
        """Content key: only the alpha/beta *ratio* steers the trellis.

        Uniform scaling of edge weights never changes a shortest path, so
        every Optimal flavour (OPT, Fixed, quantized) sharing an AC-cost
        fraction shares activity totals — across a sweep, OPT re-encodes
        only when the operating point's ratio actually moves.
        """
        return f"dbi-opt[r={self.model.ac_fraction.hex()}]"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DbiOptimal(alpha={self.model.alpha}, beta={self.model.beta})"


class DbiOptimalFixed(DbiOptimal):
    """DBI OPT with the fixed coefficients alpha = beta = 1 (paper §III).

    The fixed ratio removes the multipliers from the hardware datapath and
    is within a fraction of a percent of the true optimum for AC-cost
    fractions between 0.23 and 0.79 (paper Fig. 4).
    """

    name = "dbi-opt-fixed"

    def __init__(self):
        super().__init__(CostModel.fixed())


class DbiOptimalQuantized(DbiOptimal):
    """DBI OPT with *bits*-bit integer coefficients (Table I's 3-bit HW)."""

    name = "dbi-opt-q3"

    def __init__(self, model: CostModel, bits: int = 3):
        quantized = QuantizedCostModel.from_cost_model(model, bits=bits)
        super().__init__(quantized)
        self.bits = bits
        self.name = f"dbi-opt-q{bits}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DbiOptimalQuantized(bits={self.bits}, "
                f"alpha={self.model.alpha:g}, beta={self.model.beta:g})")


register_scheme("dbi-opt", lambda: DbiOptimal(CostModel.fixed()))
register_scheme("dbi-opt-fixed", DbiOptimalFixed)
register_scheme("dbi-opt-q3", lambda: DbiOptimalQuantized(CostModel.fixed(), bits=3))
