"""Streaming optimal DBI encoding across burst boundaries.

The paper encodes each burst independently against an idle-high boundary.
When bursts are transmitted back-to-back (a streaming write), the last
word of one burst is the electrical boundary of the next, and per-burst
optimisation is no longer globally optimal: the cheapest encoding of
burst *k* can leave the bus in a state that makes burst *k+1* expensive.

This module extends the paper's formulation to streams:

* :func:`solve_stream` — jointly optimal invert flags for a whole byte
  stream (one long trellis; still O(total bytes)).
* :class:`StreamingOptimalEncoder` — an online encoder with a configurable
  **lookahead window**: bytes are buffered, the trellis is solved over the
  window, and a prefix of decisions is committed.  ``window=1`` reproduces
  the greedy weighted heuristic; ``window → stream length`` converges to
  the joint optimum — which the tests and the window-size ablation
  quantify.
* :class:`BatchStreamingEncoder` — the batch sibling: the same windowed
  trellis solved over ``(lanes, window)`` arrays at once through the
  vector backend (:func:`repro.core.vectorized.solve_batch` with per-row
  boundary words), for controllers that drive many byte lanes in
  lock-step.  Per-lane decisions and activity tallies are bit-identical
  to running one :class:`StreamingOptimalEncoder` per lane, which the
  differential suite (``tests/core/test_streaming_batch.py``) enforces.

This is the natural "integrate into future memories" extension the
paper's conclusion sketches: a controller that optimises over the write
queue instead of a single burst.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from .bitops import (
    ALL_ONES_WORD,
    BYTE_MASK,
    WORD_WIDTH,
    check_byte,
    check_word,
    make_word,
)
from .burst import Burst
from .costs import CostModel
from .trellis import solve


def solve_stream(data: Sequence[int], model: CostModel,
                 prev_word: int = ALL_ONES_WORD) -> Tuple[Tuple[bool, ...], float]:
    """Jointly optimal invert flags for an arbitrary byte stream.

    Equivalent to :func:`repro.core.trellis.solve` on one long burst; the
    split into JEDEC bursts does not change the trellis because the cost
    structure is purely byte-to-byte.

    >>> flags, cost = solve_stream([0x00, 0x00], CostModel.dc_only())
    >>> flags
    (True, True)
    """
    burst = Burst(data)
    solution = solve(burst, model, prev_word=prev_word)
    return solution.invert_flags, solution.total_cost


def stream_cost(data: Sequence[int], flags: Sequence[bool], model: CostModel,
                prev_word: int = ALL_ONES_WORD) -> float:
    """Cost of a concrete flag assignment over a byte stream."""
    if len(data) != len(flags):
        raise ValueError(f"{len(flags)} flags for {len(data)} bytes")
    check_word(prev_word)
    cost = 0.0
    last = prev_word
    for byte, inverted in zip(data, flags):
        word = make_word(check_byte(byte), bool(inverted))
        cost += model.word_cost(last, word)
        last = word
    return cost


@dataclass
class StreamingOptimalEncoder:
    """Online DBI encoder with bounded lookahead.

    Bytes are pushed with :meth:`push`; committed (byte, invert-flag)
    pairs stream out.  Internally the encoder keeps up to ``window`` bytes
    pending, solves the trellis over the pending window, and commits the
    first ``commit`` decisions (default: half the window), keeping the
    rest pending so later bytes can still influence them.

    ``flush()`` commits everything pending; call it at end-of-stream.

    >>> encoder = StreamingOptimalEncoder(CostModel.fixed(), window=4)
    >>> out = encoder.push([0x00] * 4) + encoder.flush()
    >>> [flag for _byte, flag in out]
    [True, True, True, True]
    """

    model: CostModel
    window: int = 8
    commit: int = 0
    prev_word: int = ALL_ONES_WORD
    _pending: List[int] = field(default_factory=list)
    _emitted: int = 0
    _cost: float = 0.0

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.commit <= 0:
            self.commit = max(1, self.window // 2)
        if self.commit > self.window:
            raise ValueError("commit cannot exceed window")
        check_word(self.prev_word)

    # -- public API ---------------------------------------------------------
    def push(self, data: Iterable[int]) -> List[Tuple[int, bool]]:
        """Feed bytes; returns decisions committed by this call."""
        committed: List[Tuple[int, bool]] = []
        for byte in data:
            self._pending.append(check_byte(byte))
            if len(self._pending) >= self.window:
                committed.extend(self._commit_prefix(self.commit))
        return committed

    def flush(self) -> List[Tuple[int, bool]]:
        """Commit all pending bytes (end of stream)."""
        if not self._pending:
            return []
        return self._commit_prefix(len(self._pending))

    @property
    def committed_bytes(self) -> int:
        """Number of bytes fully decided so far."""
        return self._emitted

    @property
    def committed_cost(self) -> float:
        """Accumulated cost of all committed decisions."""
        return self._cost

    @property
    def bus_state(self) -> int:
        """Current wire word after the last committed byte."""
        return self.prev_word

    def set_model(self, model: CostModel) -> None:
        """Re-price every future trellis solve (adaptive tracking / DVFS).

        Takes effect at the next :meth:`push`/:meth:`flush` solve;
        already-committed decisions and tallies are untouched.  Pending
        bytes are re-solved under the new model when their window
        commits — the window-boundary re-pricing semantics the adaptive
        controller relies on.
        """
        self.model = model

    # -- internals ------------------------------------------------------------
    def _commit_prefix(self, count: int) -> List[Tuple[int, bool]]:
        burst = Burst(self._pending)
        solution = solve(burst, self.model, prev_word=self.prev_word)
        decisions: List[Tuple[int, bool]] = []
        for byte, flag in zip(self._pending[:count],
                              solution.invert_flags[:count]):
            word = make_word(byte, flag)
            self._cost += self.model.word_cost(self.prev_word, word)
            self.prev_word = word
            decisions.append((byte, flag))
        self._pending = self._pending[count:]
        self._emitted += len(decisions)
        return decisions


class BatchStreamingEncoder:
    """Windowed-trellis streaming encoder over many lanes at once.

    Each of the ``rows`` lanes is an independent byte stream encoded with
    exactly the semantics of :class:`StreamingOptimalEncoder` (same
    ``window``/``commit`` cadence, same boundary-word chaining): whenever
    a lane has ``window`` bytes pending, the trellis is solved over that
    window and the first ``commit`` decisions are committed.  The batch
    twist is that every lane currently holding the same number of pending
    bytes is solved in one :func:`~repro.core.vectorized.solve_batch`
    call over a ``(lanes, window)`` array with per-row boundary words —
    the whole link advances in lock-step rounds instead of per byte.

    Decisions and the integer activity tallies (zeros, transitions,
    beats per lane) are **bit-identical** to the per-lane reference;
    that is a guarantee (enforced by the differential suite), not an
    approximation, because :func:`solve_batch` performs the reference
    trellis's IEEE-754 operations in the reference order.

    Requires NumPy (the vector backend); per-lane reference encoding is
    the fallback for NumPy-free environments.

    Parameters
    ----------
    model:
        Cost model shared by every lane.
    rows:
        Number of independent lane streams.
    window, commit:
        Lookahead window and commit prefix, as in
        :class:`StreamingOptimalEncoder` (commit defaults to half the
        window).
    prev_word:
        Initial bus word of every lane (idle-high by default).
    record:
        Keep the committed ``(byte, flag)`` decisions per lane —
        needed for round-trip/differential checks, off by default for
        throughput.
    """

    def __init__(self, model: CostModel, rows: int, window: int = 8,
                 commit: int = 0, prev_word: int = ALL_ONES_WORD,
                 record: bool = False):
        from .vectorized import _require_numpy

        np = _require_numpy()
        if rows < 1:
            raise ValueError(f"rows must be >= 1, got {rows}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if commit <= 0:
            commit = max(1, window // 2)
        if commit > window:
            raise ValueError("commit cannot exceed window")
        check_word(prev_word)
        self.model = model
        self.rows = rows
        self.window = window
        self.commit = commit
        self.record = record
        self._np = np
        self._prev = np.full(rows, prev_word, dtype=np.int64)
        self._pending: List = [np.zeros(0, dtype=np.uint8)
                               for _ in range(rows)]
        self._zeros = np.zeros(rows, dtype=np.int64)
        self._transitions = np.zeros(rows, dtype=np.int64)
        self._beats = np.zeros(rows, dtype=np.int64)
        self._decisions: List[List] = [[] for _ in range(rows)]

    # -- public API ---------------------------------------------------------
    def push(self, streams: Sequence) -> None:
        """Append one byte stream per lane and commit every full window.

        *streams* must have one entry per lane (``bytes``, array, or any
        byte sequence; empty entries are fine).
        """
        np = self._np
        if len(streams) != self.rows:
            raise ValueError(
                f"{len(streams)} streams for {self.rows} lanes")
        # Validate every stream before mutating any pending buffer, so a
        # rejected push leaves the encoder state untouched.
        converted = []
        for row, stream in enumerate(streams):
            if isinstance(stream, (bytes, bytearray)):
                new = np.frombuffer(bytes(stream), dtype=np.uint8)
            else:
                new = np.asarray(stream)
                if new.dtype != np.uint8:
                    # Reject out-of-range values like the reference
                    # encoder's check_byte, instead of wrapping mod 256.
                    if not np.issubdtype(new.dtype, np.integer):
                        raise TypeError(
                            f"lane {row}: stream must hold integers, got "
                            f"dtype {new.dtype}")
                    if new.size and (new.min() < 0 or new.max() > BYTE_MASK):
                        raise ValueError(
                            f"lane {row}: byte values out of range "
                            f"[0, {BYTE_MASK}]")
                    new = new.astype(np.uint8)
            if new.ndim != 1:
                raise ValueError(
                    f"lane {row}: stream must be one-dimensional")
            converted.append(new)
        for row, new in enumerate(converted):
            if len(new):
                self._pending[row] = np.concatenate(
                    [self._pending[row], new])
        self._run_rounds(final=False)

    def flush(self) -> None:
        """Commit every pending byte on every lane (end of stream)."""
        self._run_rounds(final=True)

    @property
    def prev_words(self):
        """Current per-lane bus words, ``(rows,)`` int64 (read-only copy)."""
        return self._prev.copy()

    @property
    def zeros(self):
        """Committed zero-beat tallies per lane, ``(rows,)`` int64."""
        return self._zeros.copy()

    @property
    def transitions(self):
        """Committed transition tallies per lane, ``(rows,)`` int64."""
        return self._transitions.copy()

    @property
    def beats(self):
        """Committed byte-beats per lane, ``(rows,)`` int64."""
        return self._beats.copy()

    def pending_counts(self) -> List[int]:
        """Bytes buffered per lane, not yet committed."""
        return [len(buf) for buf in self._pending]

    def set_model(self, model: CostModel) -> None:
        """Re-price every future windowed solve on every lane.

        Same semantics as :meth:`StreamingOptimalEncoder.set_model`: the
        change applies from the next :meth:`push`/:meth:`flush` round
        (``_process_group`` reads the coefficients per call), committed
        tallies are untouched, and pending bytes commit under the new
        model — keeping the two backends bit-identical when the
        controller switches models at submit boundaries.
        """
        self.model = model

    def decisions(self, row: int) -> List[Tuple[int, bool]]:
        """Committed (byte, invert-flag) pairs of one lane (``record=True``)."""
        if not self.record:
            raise RuntimeError(
                "decisions are only kept when record=True")
        out: List[Tuple[int, bool]] = []
        for chunk_bytes_, chunk_flags in self._decisions[row]:
            out.extend(zip((int(b) for b in chunk_bytes_),
                           (bool(f) for f in chunk_flags)))
        return out

    # -- internals ------------------------------------------------------------
    def _run_rounds(self, final: bool) -> None:
        """Drain every lane with >= window pending (all pending if final).

        Lanes are grouped by pending length so each group advances
        through its windows as one rectangular batch; a group leaves the
        loop holding < window bytes (0 if final).
        """
        groups: dict = {}
        floor = 1 if final else self.window
        for row, buf in enumerate(self._pending):
            if len(buf) >= floor:
                groups.setdefault(len(buf), []).append(row)
        np = self._np
        for length, rows_idx in groups.items():
            idx = np.asarray(rows_idx, dtype=np.intp)
            mat = np.stack([self._pending[row] for row in rows_idx])
            pos = self._process_group(idx, mat, final)
            for slot, row in enumerate(rows_idx):
                # Copy the (< window) leftover so the whole group matrix
                # is not pinned in memory by a tiny view.
                self._pending[row] = mat[slot, pos:].copy()

    def _process_group(self, idx, mat, final: bool) -> int:
        """Advance one equal-length group through its windows; return the
        number of committed bytes per lane.

        The raw/inverted wire-word planes are computed once for the
        whole group matrix and sliced per round — every round is then a
        single :func:`~repro.core.vectorized._viterbi_planes` call plus
        the integer tallies.
        """
        from .vectorized import _viterbi_planes, _word_planes, popcount_table

        np = self._np
        pop = popcount_table()
        alpha, beta = self.model.alpha, self.model.beta
        words_raw, words_inv = _word_planes(mat)
        length = mat.shape[1]
        prev = self._prev[idx]
        zeros = np.zeros(len(idx), dtype=np.int64)
        n_transitions = np.zeros(len(idx), dtype=np.int64)
        pos = 0
        while (length - pos >= self.window) or (final and pos < length):
            end = min(pos + self.window, length)
            count = self.commit if end - pos == self.window else end - pos
            flags, _costs = _viterbi_planes(words_raw[:, pos:end],
                                            words_inv[:, pos:end],
                                            alpha, beta, prev)
            committed_flags = flags[:, :count]
            words = np.where(committed_flags,
                             words_inv[:, pos:pos + count],
                             words_raw[:, pos:pos + count])
            prev_columns = np.concatenate(
                [prev[:, None], words[:, :-1]], axis=1)
            zeros += (WORD_WIDTH - pop[words]).sum(axis=1)
            n_transitions += pop[prev_columns ^ words].sum(axis=1)
            prev = words[:, -1]
            if self.record:
                for slot, row in enumerate(idx):
                    self._decisions[int(row)].append(
                        (mat[slot, pos:pos + count].copy(),
                         committed_flags[slot].copy()))
            pos += count
        self._zeros[idx] += zeros
        self._transitions[idx] += n_transitions
        self._beats[idx] += pos
        self._prev[idx] = prev
        return pos


def windowed_stream_cost(data: Sequence[int], model: CostModel,
                         window: int, commit: int = 0,
                         prev_word: int = ALL_ONES_WORD) -> float:
    """Total cost of encoding *data* with a given lookahead window.

    Convenience wrapper used by the window-size ablation: runs a
    :class:`StreamingOptimalEncoder` over the stream and returns the
    committed cost.
    """
    encoder = StreamingOptimalEncoder(model=model, window=window,
                                      commit=commit, prev_word=prev_word)
    encoder.push(data)
    encoder.flush()
    return encoder.committed_cost
