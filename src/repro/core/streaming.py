"""Streaming optimal DBI encoding across burst boundaries.

The paper encodes each burst independently against an idle-high boundary.
When bursts are transmitted back-to-back (a streaming write), the last
word of one burst is the electrical boundary of the next, and per-burst
optimisation is no longer globally optimal: the cheapest encoding of
burst *k* can leave the bus in a state that makes burst *k+1* expensive.

This module extends the paper's formulation to streams:

* :func:`solve_stream` — jointly optimal invert flags for a whole byte
  stream (one long trellis; still O(total bytes)).
* :class:`StreamingOptimalEncoder` — an online encoder with a configurable
  **lookahead window**: bytes are buffered, the trellis is solved over the
  window, and a prefix of decisions is committed.  ``window=1`` reproduces
  the greedy weighted heuristic; ``window → stream length`` converges to
  the joint optimum — which the tests and the window-size ablation
  quantify.

This is the natural "integrate into future memories" extension the
paper's conclusion sketches: a controller that optimises over the write
queue instead of a single burst.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from .bitops import ALL_ONES_WORD, check_byte, check_word, make_word
from .burst import Burst
from .costs import CostModel
from .trellis import solve


def solve_stream(data: Sequence[int], model: CostModel,
                 prev_word: int = ALL_ONES_WORD) -> Tuple[Tuple[bool, ...], float]:
    """Jointly optimal invert flags for an arbitrary byte stream.

    Equivalent to :func:`repro.core.trellis.solve` on one long burst; the
    split into JEDEC bursts does not change the trellis because the cost
    structure is purely byte-to-byte.

    >>> flags, cost = solve_stream([0x00, 0x00], CostModel.dc_only())
    >>> flags
    (True, True)
    """
    burst = Burst(data)
    solution = solve(burst, model, prev_word=prev_word)
    return solution.invert_flags, solution.total_cost


def stream_cost(data: Sequence[int], flags: Sequence[bool], model: CostModel,
                prev_word: int = ALL_ONES_WORD) -> float:
    """Cost of a concrete flag assignment over a byte stream."""
    if len(data) != len(flags):
        raise ValueError(f"{len(flags)} flags for {len(data)} bytes")
    check_word(prev_word)
    cost = 0.0
    last = prev_word
    for byte, inverted in zip(data, flags):
        word = make_word(check_byte(byte), bool(inverted))
        cost += model.word_cost(last, word)
        last = word
    return cost


@dataclass
class StreamingOptimalEncoder:
    """Online DBI encoder with bounded lookahead.

    Bytes are pushed with :meth:`push`; committed (byte, invert-flag)
    pairs stream out.  Internally the encoder keeps up to ``window`` bytes
    pending, solves the trellis over the pending window, and commits the
    first ``commit`` decisions (default: half the window), keeping the
    rest pending so later bytes can still influence them.

    ``flush()`` commits everything pending; call it at end-of-stream.

    >>> encoder = StreamingOptimalEncoder(CostModel.fixed(), window=4)
    >>> out = encoder.push([0x00] * 4) + encoder.flush()
    >>> [flag for _byte, flag in out]
    [True, True, True, True]
    """

    model: CostModel
    window: int = 8
    commit: int = 0
    prev_word: int = ALL_ONES_WORD
    _pending: List[int] = field(default_factory=list)
    _emitted: int = 0
    _cost: float = 0.0

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.commit <= 0:
            self.commit = max(1, self.window // 2)
        if self.commit > self.window:
            raise ValueError("commit cannot exceed window")
        check_word(self.prev_word)

    # -- public API ---------------------------------------------------------
    def push(self, data: Iterable[int]) -> List[Tuple[int, bool]]:
        """Feed bytes; returns decisions committed by this call."""
        committed: List[Tuple[int, bool]] = []
        for byte in data:
            self._pending.append(check_byte(byte))
            if len(self._pending) >= self.window:
                committed.extend(self._commit_prefix(self.commit))
        return committed

    def flush(self) -> List[Tuple[int, bool]]:
        """Commit all pending bytes (end of stream)."""
        if not self._pending:
            return []
        return self._commit_prefix(len(self._pending))

    @property
    def committed_bytes(self) -> int:
        """Number of bytes fully decided so far."""
        return self._emitted

    @property
    def committed_cost(self) -> float:
        """Accumulated cost of all committed decisions."""
        return self._cost

    @property
    def bus_state(self) -> int:
        """Current wire word after the last committed byte."""
        return self.prev_word

    # -- internals ------------------------------------------------------------
    def _commit_prefix(self, count: int) -> List[Tuple[int, bool]]:
        burst = Burst(self._pending)
        solution = solve(burst, self.model, prev_word=self.prev_word)
        decisions: List[Tuple[int, bool]] = []
        for byte, flag in zip(self._pending[:count],
                              solution.invert_flags[:count]):
            word = make_word(byte, flag)
            self._cost += self.model.word_cost(self.prev_word, word)
            self.prev_word = word
            decisions.append((byte, flag))
        self._pending = self._pending[count:]
        self._emitted += len(decisions)
        return decisions


def windowed_stream_cost(data: Sequence[int], model: CostModel,
                         window: int, commit: int = 0,
                         prev_word: int = ALL_ONES_WORD) -> float:
    """Total cost of encoding *data* with a given lookahead window.

    Convenience wrapper used by the window-size ablation: runs a
    :class:`StreamingOptimalEncoder` over the stream and returns the
    committed cost.
    """
    encoder = StreamingOptimalEncoder(model=model, window=window,
                                      commit=commit, prev_word=prev_word)
    encoder.push(data)
    encoder.flush()
    return encoder.committed_cost
