"""Burst representation.

A *burst* is the unit of DBI encoding: the sequence of bytes that one byte
lane transmits back-to-back (burst length 8 for GDDR5/DDR4 reads/writes,
but any length ≥ 1 is supported — the trellis search is length-agnostic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

from .bitops import (
    BYTE_MASK,
    check_byte,
    format_bits,
    parse_bits,
    zeros_in_byte,
)

#: JEDEC burst length for GDDR5/GDDR5X/DDR4 — the paper's setting.
DEFAULT_BURST_LENGTH = 8


@dataclass(frozen=True)
class Burst:
    """An immutable sequence of data bytes to be DBI-encoded.

    Parameters
    ----------
    data:
        The bytes, most-significant bit = DQ7, transmitted in order.

    >>> burst = Burst.from_bit_strings(["10001110", "10000110"])
    >>> burst.data
    (142, 134)
    >>> len(burst)
    2
    """

    data: Tuple[int, ...]

    def __init__(self, data: Iterable[int]):
        values = tuple(check_byte(byte) for byte in data)
        if not values:
            raise ValueError("a burst must contain at least one byte")
        object.__setattr__(self, "data", values)

    @classmethod
    def from_bit_strings(cls, strings: Sequence[str]) -> "Burst":
        """Build a burst from MSB-first bit strings (paper-figure style)."""
        return cls(parse_bits(text) for text in strings)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Burst":
        """Build a burst from a ``bytes`` object."""
        return cls(raw)

    @classmethod
    def from_int(cls, value: int, length: int = DEFAULT_BURST_LENGTH) -> "Burst":
        """Split a wide little-endian integer into *length* bytes.

        >>> Burst.from_int(0x0201, length=2).data
        (1, 2)
        """
        if value < 0:
            raise ValueError("value must be non-negative")
        if value >> (8 * length):
            raise ValueError(f"value does not fit in {length} bytes")
        return cls((value >> (8 * i)) & BYTE_MASK for i in range(length))

    def __len__(self) -> int:
        return len(self.data)

    def __iter__(self) -> Iterator[int]:
        return iter(self.data)

    def __getitem__(self, index: int) -> int:
        return self.data[index]

    def to_bytes(self) -> bytes:
        """Return the burst payload as a ``bytes`` object."""
        return bytes(self.data)

    def bit_strings(self) -> List[str]:
        """MSB-first bit strings, matching the paper's figures."""
        return [format_bits(byte) for byte in self.data]

    def zeros(self) -> int:
        """Total zero bits in the raw (unencoded) payload."""
        return sum(zeros_in_byte(byte) for byte in self.data)

    def inverted(self) -> "Burst":
        """Burst with every byte complemented (diagnostic helper)."""
        return Burst(byte ^ BYTE_MASK for byte in self.data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        bits = " ".join(self.bit_strings())
        return f"Burst({bits})"


#: The worked example of the paper's Fig. 2, transcribed MSB-first.
PAPER_FIG2_BURST = Burst.from_bit_strings(
    [
        "10001110",
        "10000110",
        "10010110",
        "11101001",
        "01111101",
        "10110111",
        "01010111",
        "11000100",
    ]
)


def chunk_bytes(payload: Sequence[int], burst_length: int = DEFAULT_BURST_LENGTH,
                pad_byte: int = 0xFF) -> List[Burst]:
    """Split a long byte stream into bursts, padding the tail with *pad_byte*.

    Padding with 0xFF models an idle-high bus: padded beats add no zeros and
    no transitions, so statistics of the real payload are unaffected.

    >>> [len(b) for b in chunk_bytes(range(10), burst_length=4)]
    [4, 4, 4]
    """
    if burst_length < 1:
        raise ValueError("burst_length must be >= 1")
    check_byte(pad_byte)
    bursts: List[Burst] = []
    buffer: List[int] = []
    for byte in payload:
        buffer.append(check_byte(byte))
        if len(buffer) == burst_length:
            bursts.append(Burst(buffer))
            buffer = []
    if buffer:
        buffer.extend([pad_byte] * (burst_length - len(buffer)))
        bursts.append(Burst(buffer))
    return bursts
