"""The paper's central idea: optimal DBI encoding as a shortest path.

For a burst of *n* bytes the 2^n possible invert-flag assignments form a
directed acyclic trellis (paper Fig. 2):

* a virtual **start** node representing the bus state before the burst
  (idle high by default),
* two nodes per byte — transmit byte *i* **non-inverted** (DBI = 1) or
  **inverted** (DBI = 0),
* a virtual **end** node collecting both final states with zero-cost edges.

The weight of an edge into a node is the cost of transmitting that node's
9-bit word right after the source node's word:
``alpha * transitions + beta * zeros``.  Because the cost of byte *i*
depends only on byte *i-1*'s transmitted form, the shortest start→end path
is the minimum-energy encoding, found in O(n) by dynamic programming
(a two-state Viterbi recursion — the software twin of the paper's Fig. 5
hardware).

:class:`TrellisGraph` additionally materialises the explicit graph with all
edge weights for inspection, documentation (Fig. 2 regeneration) and
cross-validation against generic shortest-path algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .bitops import ALL_ONES_WORD, check_word, make_word
from .burst import Burst
from .costs import CostModel

#: Node label of the virtual source node.
START_NODE = "start"

#: Node label of the virtual sink node.
END_NODE = "end"


def node_name(index: int, inverted: bool) -> str:
    """Canonical node label for byte *index* in the given polarity."""
    return f"byte{index}:{'inv' if inverted else 'raw'}"


@dataclass(frozen=True)
class TrellisEdge:
    """One weighted edge of the DBI trellis."""

    source: str
    target: str
    weight: float
    #: Transmitted word at the target (None for the edge into END_NODE).
    word: Optional[int] = None


@dataclass
class TrellisGraph:
    """Explicit trellis for one burst and one cost model.

    Primarily a documentation / validation artefact: the production encoder
    (:func:`solve`) never builds it.  ``nodes`` contains START/END plus two
    nodes per byte; ``edges`` all weighted edges in topological order.
    """

    burst: Burst
    model: CostModel
    prev_word: int = ALL_ONES_WORD
    nodes: List[str] = field(default_factory=list)
    edges: List[TrellisEdge] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_word(self.prev_word)
        self._build()

    def _build(self) -> None:
        self.nodes = [START_NODE]
        for index in range(len(self.burst)):
            self.nodes.append(node_name(index, False))
            self.nodes.append(node_name(index, True))
        self.nodes.append(END_NODE)

        self.edges = []
        first = self.burst[0]
        for inverted in (False, True):
            word = make_word(first, inverted)
            self.edges.append(
                TrellisEdge(
                    source=START_NODE,
                    target=node_name(0, inverted),
                    weight=self.model.word_cost(self.prev_word, word),
                    word=word,
                )
            )
        for index in range(1, len(self.burst)):
            byte = self.burst[index]
            for prev_inverted in (False, True):
                prev_word = make_word(self.burst[index - 1], prev_inverted)
                for inverted in (False, True):
                    word = make_word(byte, inverted)
                    self.edges.append(
                        TrellisEdge(
                            source=node_name(index - 1, prev_inverted),
                            target=node_name(index, inverted),
                            weight=self.model.word_cost(prev_word, word),
                            word=word,
                        )
                    )
        last = len(self.burst) - 1
        for inverted in (False, True):
            self.edges.append(
                TrellisEdge(
                    source=node_name(last, inverted),
                    target=END_NODE,
                    weight=0.0,
                    word=None,
                )
            )

    # -- queries -----------------------------------------------------------
    def edge_weight(self, source: str, target: str) -> float:
        """Weight of the unique edge source→target (KeyError if absent)."""
        for edge in self.edges:
            if edge.source == source and edge.target == target:
                return edge.weight
        raise KeyError(f"no edge {source} -> {target}")

    def adjacency(self) -> Dict[str, List[Tuple[str, float]]]:
        """Adjacency-list view ``{source: [(target, weight), ...]}``."""
        result: Dict[str, List[Tuple[str, float]]] = {node: [] for node in self.nodes}
        for edge in self.edges:
            result[edge.source].append((edge.target, edge.weight))
        return result

    def to_networkx(self):  # pragma: no cover - exercised in tests when networkx present
        """Export as a ``networkx.DiGraph`` for cross-validation."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes)
        for edge in self.edges:
            graph.add_edge(edge.source, edge.target, weight=edge.weight)
        return graph

    def render(self) -> str:
        """Human-readable dump in the spirit of the paper's Fig. 2."""
        lines = [f"trellis over {len(self.burst)} bytes "
                 f"(alpha={self.model.alpha}, beta={self.model.beta})"]
        for edge in self.edges:
            word = "-" if edge.word is None else format(edge.word, "09b")
            lines.append(f"  {edge.source:>10} -> {edge.target:<10} "
                         f"w={edge.weight:g} word={word}")
        return "\n".join(lines)


@dataclass(frozen=True)
class TrellisSolution:
    """Result of the shortest-path search for one burst."""

    invert_flags: Tuple[bool, ...]
    total_cost: float
    #: Per-step minimum path costs, ``costs[i] = (cost_raw, cost_inv)`` —
    #: exactly the ``cost(i)`` / ``cost_inv(i)`` signals of the paper's Fig. 5.
    step_costs: Tuple[Tuple[float, float], ...]


def solve(burst: Burst, model: CostModel,
          prev_word: int = ALL_ONES_WORD) -> TrellisSolution:
    """Find the minimum-cost invert-flag assignment for *burst*.

    Two-state Viterbi recursion with backtracking, mirroring the hardware of
    the paper's Fig. 5: forward pass accumulates ``cost(i)``/``cost_inv(i)``,
    per-step predecessor choices are remembered, and the cheaper of the two
    final states is backtracked through the recorded mux settings.

    Ties are broken toward the **non-inverted** representation, matching a
    hardware comparator that only switches on strict improvement.

    >>> from .costs import CostModel
    >>> solution = solve(Burst([0x00, 0x00]), CostModel.dc_only())
    >>> solution.invert_flags
    (True, True)
    """
    check_word(prev_word)
    n = len(burst)

    # Forward pass ----------------------------------------------------------
    # cost_raw / cost_inv: cheapest cost of transmitting bytes 0..i with the
    # i-th byte sent raw / inverted.  choice_*[i] records whether the best
    # predecessor of state (i, *) was the inverted state of byte i-1.
    words_raw = [make_word(byte, False) for byte in burst]
    words_inv = [make_word(byte, True) for byte in burst]

    cost_raw = model.word_cost(prev_word, words_raw[0])
    cost_inv = model.word_cost(prev_word, words_inv[0])
    choice_raw: List[bool] = [False]
    choice_inv: List[bool] = [False]
    step_costs: List[Tuple[float, float]] = [(cost_raw, cost_inv)]

    for i in range(1, n):
        edge_rr = model.word_cost(words_raw[i - 1], words_raw[i])
        edge_ir = model.word_cost(words_inv[i - 1], words_raw[i])
        edge_ri = model.word_cost(words_raw[i - 1], words_inv[i])
        edge_ii = model.word_cost(words_inv[i - 1], words_inv[i])

        via_raw = cost_raw + edge_rr
        via_inv = cost_inv + edge_ir
        if via_inv < via_raw:
            next_raw, from_inv_raw = via_inv, True
        else:
            next_raw, from_inv_raw = via_raw, False

        via_raw = cost_raw + edge_ri
        via_inv = cost_inv + edge_ii
        if via_inv < via_raw:
            next_inv, from_inv_inv = via_inv, True
        else:
            next_inv, from_inv_inv = via_raw, False

        cost_raw, cost_inv = next_raw, next_inv
        choice_raw.append(from_inv_raw)
        choice_inv.append(from_inv_inv)
        step_costs.append((cost_raw, cost_inv))

    # Backtracking ------------------------------------------------------------
    flags = [False] * n
    current_inverted = cost_inv < cost_raw
    total = cost_inv if current_inverted else cost_raw
    for i in range(n - 1, -1, -1):
        flags[i] = current_inverted
        current_inverted = (choice_inv[i] if current_inverted else choice_raw[i])

    return TrellisSolution(
        invert_flags=tuple(flags),
        total_cost=total,
        step_costs=tuple(step_costs),
    )


def brute_force(burst: Burst, model: CostModel,
                prev_word: int = ALL_ONES_WORD) -> TrellisSolution:
    """Exhaustively search all 2^n encodings (reference oracle for tests).

    Exponential — intended for bursts up to ~16 bytes.  Tie-breaking
    prefers lexicographically-smaller flag patterns with non-inverted
    first, consistent with :func:`solve`.
    """
    check_word(prev_word)
    n = len(burst)
    if n > 20:
        raise ValueError(f"brute force limited to 20 bytes, got {n}")
    best_flags: Optional[Tuple[bool, ...]] = None
    best_cost = float("inf")
    for pattern in range(1 << n):
        flags = tuple(bool((pattern >> i) & 1) for i in range(n))
        cost = 0.0
        last = prev_word
        for byte, inverted in zip(burst, flags):
            word = make_word(byte, inverted)
            cost += model.word_cost(last, word)
            last = word
        if cost < best_cost:
            best_cost = cost
            best_flags = flags
    assert best_flags is not None
    return TrellisSolution(invert_flags=best_flags, total_cost=best_cost,
                           step_costs=())


def solve_on_graph(graph: TrellisGraph) -> Tuple[List[str], float]:
    """Dijkstra-style shortest path on the explicit trellis graph.

    Returns the node path (including START/END) and its total weight.  Used
    to cross-check :func:`solve` against a generic algorithm; since the
    trellis is a DAG in topological order, a single relaxation sweep is
    exact.
    """
    dist: Dict[str, float] = {node: float("inf") for node in graph.nodes}
    pred: Dict[str, Optional[str]] = {node: None for node in graph.nodes}
    dist[START_NODE] = 0.0
    for edge in graph.edges:  # edges are emitted in topological order
        candidate = dist[edge.source] + edge.weight
        if candidate < dist[edge.target]:
            dist[edge.target] = candidate
            pred[edge.target] = edge.source

    path: List[str] = []
    node: Optional[str] = END_NODE
    while node is not None:
        path.append(node)
        node = pred[node]
    path.reverse()
    if path[0] != START_NODE:
        raise RuntimeError("END node unreachable — malformed trellis")
    return path, dist[END_NODE]


def flags_from_path(path: List[str]) -> Tuple[bool, ...]:
    """Convert a node path from :func:`solve_on_graph` into invert flags."""
    flags: List[bool] = []
    for node in path:
        if node in (START_NODE, END_NODE):
            continue
        __, polarity = node.split(":")
        flags.append(polarity == "inv")
    return tuple(flags)
