"""Exhaustive enumeration and Pareto analysis of DBI encodings.

The paper's Fig. 2 observes that, for its example burst, varying the
alpha/beta ratio exposes five Pareto-optimal (zeros, transitions)
trade-offs that neither DBI DC nor DBI AC can reach.  This module
reproduces that analysis for arbitrary (small) bursts:

* :func:`enumerate_encodings` walks all 2^n invert patterns and tallies
  each pattern's activity.
* :func:`pareto_front` filters the non-dominated (transitions, zeros)
  points.
* :func:`supported_points` further restricts to the *lower convex hull* —
  the points actually reachable as a shortest path for some alpha/beta
  ratio (a linear objective can only find supported Pareto points).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from .bitops import ALL_ONES_WORD, check_word, make_word, transitions, zeros_in_word
from .burst import Burst
from .costs import CostModel
from .schemes import EncodedBurst
from .trellis import solve


@dataclass(frozen=True)
class EncodingPoint:
    """One invert-pattern with its activity tallies."""

    invert_flags: Tuple[bool, ...]
    transitions: int
    zeros: int

    @property
    def point(self) -> Tuple[int, int]:
        """(transitions, zeros) coordinates."""
        return (self.transitions, self.zeros)


def enumerate_encodings(burst: Burst,
                        prev_word: int = ALL_ONES_WORD) -> List[EncodingPoint]:
    """All 2^n encodings of *burst* with their activity (n ≤ 20).

    >>> points = enumerate_encodings(Burst([0x0F]))
    >>> sorted(p.point for p in points)
    [(4, 4), (5, 5)]
    """
    check_word(prev_word)
    n = len(burst)
    if n > 20:
        raise ValueError(f"exhaustive enumeration limited to 20 bytes, got {n}")
    results: List[EncodingPoint] = []
    for pattern in range(1 << n):
        flags = tuple(bool((pattern >> i) & 1) for i in range(n))
        n_trans = 0
        n_zeros = 0
        last = prev_word
        for byte, inverted in zip(burst, flags):
            word = make_word(byte, inverted)
            n_trans += transitions(last, word)
            n_zeros += zeros_in_word(word)
            last = word
        results.append(EncodingPoint(flags, n_trans, n_zeros))
    return results


def pareto_front(points: Sequence[EncodingPoint]) -> List[EncodingPoint]:
    """Non-dominated points, sorted by ascending transitions.

    A point dominates another if it is no worse in both coordinates and
    strictly better in at least one.  Duplicate coordinates are collapsed
    to a single representative.
    """
    best_by_trans: dict = {}
    for point in points:
        incumbent = best_by_trans.get(point.transitions)
        if incumbent is None or point.zeros < incumbent.zeros:
            best_by_trans[point.transitions] = point
    frontier: List[EncodingPoint] = []
    best_zeros = float("inf")
    for n_trans in sorted(best_by_trans):
        candidate = best_by_trans[n_trans]
        if candidate.zeros < best_zeros:
            frontier.append(candidate)
            best_zeros = candidate.zeros
    return frontier


def supported_points(burst: Burst, prev_word: int = ALL_ONES_WORD,
                     resolution: int = 2048) -> List[Tuple[int, int]]:
    """(transitions, zeros) points reachable by the optimal encoder.

    Sweeps the alpha/beta ratio over *resolution* steps (plus the two pure
    endpoints) and records the activity of each shortest-path solution.
    These are the *supported* Pareto points — the lower convex hull of the
    achievable region, which is what "vary the coefficients" in the paper
    explores.
    """
    check_word(prev_word)
    seen: Set[Tuple[int, int]] = set()
    for step in range(resolution + 1):
        ac_fraction = step / resolution
        model = CostModel.from_ac_fraction(ac_fraction)
        solution = solve(burst, model, prev_word=prev_word)
        encoded = EncodedBurst(burst=burst, invert_flags=solution.invert_flags,
                               prev_word=prev_word)
        seen.add(encoded.activity())
    # Filter dominated points: pure-endpoint ties can admit dominated optima
    # (e.g. at alpha=0 any pattern with minimal zeros is "optimal" regardless
    # of its transition count).
    result: List[Tuple[int, int]] = []
    best_zeros = float("inf")
    for n_trans, n_zeros in sorted(seen):
        if n_zeros < best_zeros:
            result.append((n_trans, n_zeros))
            best_zeros = n_zeros
    return result


def convex_hull_lower(points: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Lower-left convex hull of integer (transitions, zeros) points.

    The subset of a Pareto frontier findable by minimising a non-negative
    linear combination of the two coordinates.
    """
    unique = sorted(set(points))
    if len(unique) <= 2:
        return unique
    hull: List[Tuple[int, int]] = []
    for point in unique:
        while len(hull) >= 2:
            (x1, y1), (x2, y2) = hull[-2], hull[-1]
            x3, y3 = point
            # Lower hull: pop the middle point unless the chain makes a
            # strict left (counter-clockwise) turn through it.
            cross = (x2 - x1) * (y3 - y1) - (y2 - y1) * (x3 - x1)
            if cross <= 0:
                hull.pop()
            else:
                break
        hull.append(point)
    # Restrict to the non-dominated part of the hull.
    result: List[Tuple[int, int]] = []
    best_zeros = float("inf")
    for x, y in hull:
        if y < best_zeros:
            result.append((x, y))
            best_zeros = y
    return result


def pareto_summary(burst: Burst, prev_word: int = ALL_ONES_WORD) -> str:
    """Markdown table of the full Pareto frontier for a (small) burst."""
    frontier = pareto_front(enumerate_encodings(burst, prev_word))
    supported = set(supported_points(burst, prev_word))
    lines = ["| transitions | zeros | supported |", "|---|---|---|"]
    for point in frontier:
        mark = "yes" if point.point in supported else "no"
        lines.append(f"| {point.transitions} | {point.zeros} | {mark} |")
    return "\n".join(lines)
