"""Streaming replay smoke harness: ``python -m repro.ctrl.smoke``.

Replays a chunk-stable :class:`~repro.workloads.source.SyntheticTraceSource`
of the requested size through :meth:`MemoryController.submit_source` and
reports one JSON line: bytes streamed, transactions, wall time, sustained
transactions/second and the process's peak RSS.

The point of being a *module* rather than test code: peak RSS
(``ru_maxrss``) is monotone over a process's lifetime, so a meaningful
"streaming stays flat" measurement needs a fresh process per trace size.
Both ``benchmarks/test_ctrl_streaming.py`` (RSS-independence and
throughput gates) and CI's ``streaming-smoke`` job (hard RSS ceiling on a
>= 64 MiB trace) run this module in a subprocess and parse the JSON.

``--rss-ceiling-mib`` turns the report into a gate: exit status 1 when
peak RSS exceeds the ceiling, which is how CI enforces bounded memory
without parsing anything.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time

from ..core.costs import CostModel
from ..workloads.source import DEFAULT_TRACE_CHUNK_BYTES, SyntheticTraceSource
from .controller import MemoryController

MIB = 1 << 20


def max_rss_mib() -> float:
    """Peak resident set size of this process, in MiB.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return peak / MIB
    return peak / 1024


def replay_stream(n_bytes: int, seed: int = 0x0DB1,
                  chunk_bytes: int = DEFAULT_TRACE_CHUNK_BYTES,
                  channels: int = 16, byte_lanes: int = 8,
                  window: int = 16, backend: str = None) -> dict:
    """One bounded-memory replay; returns the measurement record."""
    source = SyntheticTraceSource(n_bytes, seed=seed,
                                  chunk_bytes=chunk_bytes)
    controller = MemoryController(channels=channels, byte_lanes=byte_lanes,
                                  model=CostModel.fixed(), window=window,
                                  backend=backend)
    start = time.perf_counter()
    controller.submit_source(source)
    stats = controller.flush()
    elapsed = time.perf_counter() - start
    return {
        "bytes_streamed": stats.bytes_written,
        "chunk_bytes": chunk_bytes,
        "transactions": stats.transactions,
        "beats": stats.beats,
        "channels": channels,
        "byte_lanes": byte_lanes,
        "window": window,
        "backend": controller.backend,
        "elapsed_s": round(elapsed, 3),
        "tx_per_s": round(stats.transactions / elapsed, 1),
        "max_rss_mib": round(max_rss_mib(), 1),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.ctrl.smoke",
        description="stream a synthetic trace through the write path and "
                    "report throughput + peak RSS as JSON")
    parser.add_argument("--mib", type=float, default=64.0,
                        help="trace size in MiB (default: 64)")
    parser.add_argument("--chunk-bytes", dest="chunk_bytes", type=int,
                        default=DEFAULT_TRACE_CHUNK_BYTES,
                        help="streaming chunk size "
                             f"(default: {DEFAULT_TRACE_CHUNK_BYTES})")
    parser.add_argument("--seed", type=int, default=0x0DB1)
    parser.add_argument("--channels", type=int, default=16)
    parser.add_argument("--lanes", type=int, default=8)
    parser.add_argument("--window", type=int, default=16)
    parser.add_argument("--backend", default=None,
                        choices=["auto", "reference", "vector"])
    parser.add_argument("--rss-ceiling-mib", dest="rss_ceiling_mib",
                        type=float, default=None,
                        help="fail (exit 1) when peak RSS exceeds this")
    args = parser.parse_args(argv)

    record = replay_stream(int(args.mib * MIB), seed=args.seed,
                           chunk_bytes=args.chunk_bytes,
                           channels=args.channels, byte_lanes=args.lanes,
                           window=args.window, backend=args.backend)
    print(json.dumps(record, sort_keys=True))
    if (args.rss_ceiling_mib is not None
            and record["max_rss_mib"] > args.rss_ceiling_mib):
        print(f"peak RSS {record['max_rss_mib']} MiB exceeds the "
              f"{args.rss_ceiling_mib} MiB ceiling", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
