"""Adaptive operating points for the write-path controller.

Two ways for a single replay pass to price (and encode) different parts
of one trace under different electrical operating points:

* :class:`OperatingPointSchedule` — **planned** switching: a DVFS-style
  frequency/voltage schedule with transaction- or address-indexed switch
  points.  The controller splits every submitted batch at the scheduled
  boundaries, re-prices the windowed trellis with each segment's cost
  model, and tallies per-segment activity so each segment is priced
  under its own :class:`~repro.phy.power.InterfaceEnergyModel`.

* :class:`AdaptiveCostTracker` — **measured** switching: the paper's
  OPT-tracking moved inside the batched write path.  The tracker watches
  the integer (zeros, transitions, beats) deltas the controller commits,
  maintains exponentially-weighted per-beat toggle/zero rates
  (``half_life_bytes`` of committed lane bytes halves a sample's
  weight), and greedily selects the candidate operating point with the
  lowest *predicted* energy per beat.  When the selection changes, the
  controller re-prices the trellis — at a window/submit boundary, so the
  vector and reference backends stay bit-identical by induction: equal
  committed deltas → equal EWMA state → equal switch points → equal
  models for every subsequent solve.

Both are threaded through :class:`repro.ctrl.controller.MemoryController`
(``schedule=`` / ``tracker=``) and surfaced as replay axes on
:class:`repro.sim.experiments.ReplaySpec` (``schedule=`` /
``tracking=``).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.bitops import WORD_WIDTH
from ..core.costs import CostModel
from ..phy.interface import get_interface
from ..phy.power import GBPS, InterfaceEnergyModel, PICOFARAD

#: Default EWMA half-life of the tracker, in committed lane bytes.
DEFAULT_HALF_LIFE_BYTES = 4096.0


@dataclass(frozen=True)
class OperatingPoint:
    """One electrical operating point a controller can run at.

    Structurally identical to :class:`repro.sim.experiments.ReplayPoint`
    (interface preset × data rate × load), duplicated here so the
    controller layer never imports the experiment engine.
    """

    interface: str
    data_rate_hz: float
    c_load_farads: float
    label: str = ""

    def __post_init__(self) -> None:
        get_interface(self.interface)  # raises KeyError on unknown presets
        if self.data_rate_hz <= 0 or self.c_load_farads <= 0:
            raise ValueError(
                "data_rate_hz and c_load_farads must be positive")
        if not self.label:
            object.__setattr__(
                self, "label",
                f"{self.interface}@{self.data_rate_hz / GBPS:g}Gbps"
                f"/{self.c_load_farads / PICOFARAD:g}pF")

    def energy_model(self) -> InterfaceEnergyModel:
        return InterfaceEnergyModel(get_interface(self.interface),
                                    self.data_rate_hz, self.c_load_farads)

    def cost_model(self) -> CostModel:
        """The point's (E_transition, max(E_zero − E_one, 0)) weights."""
        return self.energy_model().cost_model()

    def describe(self) -> str:
        """Canonical cache-key fragment (label + exact coefficients)."""
        return (f"{self.interface}:{float(self.data_rate_hz).hex()}"
                f":{float(self.c_load_farads).hex()}")


def _check_points(points: Sequence[OperatingPoint],
                  noun: str) -> Tuple[OperatingPoint, ...]:
    points = tuple(points)
    if not points:
        raise ValueError(f"{noun} needs at least one operating point")
    labels = [point.label for point in points]
    if len(set(labels)) != len(labels):
        raise ValueError(f"duplicate operating-point labels in {labels}")
    return points


#: Schedule indexing units: the Nth submitted transaction, or the
#: transaction's address.
SCHEDULE_UNITS = ("transactions", "address")


@dataclass(frozen=True)
class OperatingPointSchedule:
    """A planned operating-point sequence with indexed switch points.

    ``points[i]`` drives segment *i*; ``switch_at[i - 1]`` is the first
    transaction index (``unit="transactions"``) or address
    (``unit="address"``) that belongs to segment *i*.  Boundaries are
    strictly increasing; a transaction maps to the last boundary at or
    below it, so address-interleaved traffic may legitimately revisit an
    earlier segment.

    Switching takes effect at the submit/window boundary the controller
    splits at, which makes a scheduled replay independent of how the
    trace was chunked — the split always lands on the same transaction.
    """

    points: Tuple[OperatingPoint, ...]
    switch_at: Tuple[int, ...]
    unit: str = "transactions"
    label: str = "schedule"

    def __post_init__(self) -> None:
        object.__setattr__(self, "points",
                           _check_points(self.points, "schedule"))
        object.__setattr__(self, "switch_at",
                           tuple(int(value) for value in self.switch_at))
        if len(self.switch_at) != len(self.points) - 1:
            raise ValueError(
                f"{len(self.points)} points need {len(self.points) - 1} "
                f"switch points, got {len(self.switch_at)}")
        if any(value <= 0 for value in self.switch_at):
            raise ValueError("switch points must be positive")
        if any(later <= earlier for earlier, later
               in zip(self.switch_at, self.switch_at[1:])):
            raise ValueError(
                f"switch points must be strictly increasing: "
                f"{self.switch_at}")
        if self.unit not in SCHEDULE_UNITS:
            raise ValueError(
                f"unknown unit {self.unit!r}; choose from {SCHEDULE_UNITS}")
        if not self.label:
            raise ValueError("schedule label must be non-empty")

    def point_at(self, segment: int) -> OperatingPoint:
        return self.points[segment]

    def segment_for(self, transaction_index: int, address: int) -> int:
        """Segment of one transaction (0-based submission index)."""
        key = (transaction_index if self.unit == "transactions"
               else address)
        return bisect_right(self.switch_at, key)

    def points_by_label(self) -> Dict[str, OperatingPoint]:
        return {point.label: point for point in self.points}

    def describe(self) -> str:
        """Canonical cache-key fragment binding points, boundaries, unit."""
        steps = ";".join(
            point.describe() + (f"@{self.switch_at[index - 1]}"
                                if index else "")
            for index, point in enumerate(self.points))
        return f"u={self.unit};{steps}"


class AdaptiveCostTracker:
    """Online alpha/beta tracking over committed write-path activity.

    Feed committed integer deltas with :meth:`observe`; read the current
    best candidate with :meth:`select`.  The estimate is an exponentially
    weighted mean of per-beat transition and zero rates:

    ``decay = 0.5 ** (beats / half_life_bytes)`` per observation, so a
    committed lane byte seen ``half_life_bytes`` bytes ago carries half
    the weight of the newest one.  Selection minimises the predicted
    energy per lane byte-beat at the measured rates::

        r_t * E_transition + r_z * E_zero + (WORD_WIDTH - r_z) * E_one

    — the same linear pricing :meth:`InterfaceEnergyModel.burst_energy`
    applies to a burst, per beat.  Before any observation the first
    candidate is the prior.  ``min_dwell_bytes`` suppresses switching
    until that many beats accumulated since the last switch, damping
    oscillation near a cost crossover.

    The arithmetic is a deterministic function of the observed integer
    deltas, which the two controller backends produce bit-identically —
    so tracked replays are backend-identical too.
    """

    def __init__(self, points: Sequence[OperatingPoint],
                 half_life_bytes: float = DEFAULT_HALF_LIFE_BYTES,
                 min_dwell_bytes: int = 0):
        self.points = _check_points(points, "tracker")
        if half_life_bytes <= 0:
            raise ValueError(
                f"half_life_bytes must be positive, got {half_life_bytes}")
        if min_dwell_bytes < 0:
            raise ValueError(
                f"min_dwell_bytes must be >= 0, got {min_dwell_bytes}")
        self.half_life_bytes = float(half_life_bytes)
        self.min_dwell_bytes = int(min_dwell_bytes)
        #: Per-candidate (E_transition, E_zero, E_one), hoisted once.
        self._energies = [
            (point.energy_model().energy_per_transition,
             point.energy_model().energy_per_zero,
             point.energy_model().energy_per_one)
            for point in self.points
        ]
        self._weight = 0.0
        self._transitions = 0.0
        self._zeros = 0.0
        self._beats_seen = 0
        self._beats_at_switch = 0
        self._current = 0
        #: ``(beats_seen, label)`` log of every selection change.
        self.switches: List[Tuple[int, str]] = []

    # -- measurement ---------------------------------------------------------
    def observe(self, zeros: int, transitions: int, beats: int) -> None:
        """Fold one committed (zeros, transitions, beats) delta in."""
        if beats < 0 or zeros < 0 or transitions < 0:
            raise ValueError("observed deltas must be non-negative")
        if beats == 0:
            return
        decay = 0.5 ** (beats / self.half_life_bytes)
        self._weight = self._weight * decay + beats
        self._transitions = self._transitions * decay + transitions
        self._zeros = self._zeros * decay + zeros
        self._beats_seen += beats

    def rates(self) -> Tuple[float, float]:
        """Estimated (transitions, zeros) per committed lane byte-beat."""
        if self._weight == 0.0:
            return 0.0, 0.0
        return (self._transitions / self._weight,
                self._zeros / self._weight)

    @property
    def beats_seen(self) -> int:
        return self._beats_seen

    # -- selection -----------------------------------------------------------
    def predicted_energy_per_beat(self, index: int) -> float:
        """Predicted joules per lane byte-beat at candidate *index*."""
        e_transition, e_zero, e_one = self._energies[index]
        r_transition, r_zero = self.rates()
        return (r_transition * e_transition + r_zero * e_zero
                + (WORD_WIDTH - r_zero) * e_one)

    def select(self) -> OperatingPoint:
        """The candidate to run next (updates the switch log).

        Sticky under ties and inside the dwell window; otherwise the
        argmin of :meth:`predicted_energy_per_beat` in declaration order.
        """
        if self._weight == 0.0:
            return self.points[self._current]
        if (self.min_dwell_bytes
                and self._beats_seen - self._beats_at_switch
                < self.min_dwell_bytes
                and self.switches):
            return self.points[self._current]
        best = self._current
        best_energy = self.predicted_energy_per_beat(best)
        for index in range(len(self.points)):
            energy = self.predicted_energy_per_beat(index)
            if energy < best_energy:
                best = index
                best_energy = energy
        if best != self._current:
            self._current = best
            self._beats_at_switch = self._beats_seen
            self.switches.append((self._beats_seen,
                                  self.points[best].label))
        return self.points[self._current]

    @property
    def current(self) -> OperatingPoint:
        return self.points[self._current]

    def points_by_label(self) -> Dict[str, OperatingPoint]:
        return {point.label: point for point in self.points}


@dataclass(frozen=True)
class TrackingConfig:
    """Declarative tracker parameters (the ``ReplaySpec.tracking`` axis).

    A spec-level value must be immutable and hashable; the stateful
    :class:`AdaptiveCostTracker` is built fresh per replay execution via
    :meth:`build`.
    """

    points: Tuple[OperatingPoint, ...]
    half_life_bytes: float = DEFAULT_HALF_LIFE_BYTES
    min_dwell_bytes: int = 0
    label: str = "tracking"

    def __post_init__(self) -> None:
        object.__setattr__(self, "points",
                           _check_points(self.points, "tracking config"))
        if self.half_life_bytes <= 0:
            raise ValueError(
                f"half_life_bytes must be positive, "
                f"got {self.half_life_bytes}")
        if self.min_dwell_bytes < 0:
            raise ValueError(
                f"min_dwell_bytes must be >= 0, got {self.min_dwell_bytes}")
        if not self.label:
            raise ValueError("tracking label must be non-empty")

    def build(self) -> AdaptiveCostTracker:
        return AdaptiveCostTracker(self.points,
                                   half_life_bytes=self.half_life_bytes,
                                   min_dwell_bytes=self.min_dwell_bytes)

    def points_by_label(self) -> Dict[str, OperatingPoint]:
        return {point.label: point for point in self.points}

    def describe(self) -> str:
        """Canonical cache-key fragment binding candidates + EWMA knobs."""
        steps = ";".join(point.describe() for point in self.points)
        return (f"hl={float(self.half_life_bytes).hex()};"
                f"dwell={self.min_dwell_bytes};{steps}")
