"""Write-path memory-controller model with cross-burst DBI lookahead."""

from .controller import (
    CACHE_LINE_BYTES,
    ControllerStatistics,
    WriteController,
    WriteTransaction,
    compare_controllers,
)

__all__ = [
    "CACHE_LINE_BYTES",
    "ControllerStatistics",
    "WriteController",
    "WriteTransaction",
    "compare_controllers",
]
