"""Write-path memory-controller models with cross-burst DBI lookahead.

Backend selection
-----------------
:class:`MemoryController` accepts the library-wide ``backend`` vocabulary
(``"auto"`` / ``"reference"`` / ``"vector"``; process default via
``REPRO_BACKEND`` or :func:`repro.set_default_backend`):

* ``reference`` — one pure-Python
  :class:`~repro.core.streaming.StreamingOptimalEncoder` per
  (channel, lane), fed byte by byte.  The executable specification, also
  frozen as :class:`WriteController` (the pre-batch single-transaction
  API).
* ``vector`` (what ``auto`` resolves to with NumPy installed) — the
  batched write path: :meth:`MemoryController.submit` steers whole
  transaction batches, stripes cache lines across channels × lanes as
  packed byte strings, and advances every lane in lock-step through one
  :class:`~repro.core.streaming.BatchStreamingEncoder` round per commit
  window; statistics are tallied per lane as integer arrays, never per
  byte.

Both backends are bit-identical — per-lane invert decisions and integer
(zeros, transitions, beats) tallies — enforced by
``tests/ctrl/test_batch_parity.py`` across POD/SSTL/LVSTL operating
points, and ``benchmarks/test_ctrl_throughput.py`` gates the batched
path at >= 10x the reference on a 10k-transaction replay.  ``auto``
additionally falls back to the reference below
:data:`~repro.ctrl.controller.AUTO_VECTOR_MIN_CELLS` trellis cells per
lock-step round (small links lose to NumPy call overhead); explicit
``"vector"`` is always honoured.

Streaming ingestion and adaptive operating points
-------------------------------------------------
:func:`transactions_from_source` streams any
:class:`~repro.workloads.source.TraceSource` (file, synthetic, registry
trace) through :meth:`MemoryController.submit` one chunk at a time in
bounded memory, with chunk seams proven invisible (bit-identical to a
one-shot submit for every chunking).  :mod:`repro.ctrl.adaptive` makes a
single pass price segments under different operating points:
:class:`~repro.ctrl.adaptive.OperatingPointSchedule` switches the cost
model at planned transaction/address boundaries (DVFS point schedules),
and :class:`~repro.ctrl.adaptive.AdaptiveCostTracker` re-estimates
alpha/beta online from the committed batch planes (EWMA with a
configurable half-life) and re-prices the windowed trellis when the
measured statistics drift — the paper's OPT-tracking inside the batched
write path.  Per-segment tallies come back from
:meth:`MemoryController.segments`.

Energy accounting takes any :class:`~repro.phy.interface.Interface`
standard via :class:`~repro.phy.power.InterfaceEnergyModel`, including
the one-level DC term that POD-only accounting omits.
"""

from .adaptive import (
    DEFAULT_HALF_LIFE_BYTES,
    AdaptiveCostTracker,
    OperatingPoint,
    OperatingPointSchedule,
    TrackingConfig,
)
from .controller import (
    AUTO_VECTOR_MIN_CELLS,
    CACHE_LINE_BYTES,
    ControllerStatistics,
    LaneState,
    MemoryController,
    SegmentActivity,
    WriteController,
    WriteTransaction,
    compare_controllers,
    transactions_from_bytes,
    transactions_from_source,
)

__all__ = [
    "AUTO_VECTOR_MIN_CELLS",
    "AdaptiveCostTracker",
    "CACHE_LINE_BYTES",
    "ControllerStatistics",
    "DEFAULT_HALF_LIFE_BYTES",
    "LaneState",
    "MemoryController",
    "OperatingPoint",
    "OperatingPointSchedule",
    "SegmentActivity",
    "TrackingConfig",
    "WriteController",
    "WriteTransaction",
    "compare_controllers",
    "transactions_from_bytes",
    "transactions_from_source",
]
