"""Write-path memory-controller models with cross-burst DBI lookahead.

Backend selection
-----------------
:class:`MemoryController` accepts the library-wide ``backend`` vocabulary
(``"auto"`` / ``"reference"`` / ``"vector"``; process default via
``REPRO_BACKEND`` or :func:`repro.set_default_backend`):

* ``reference`` — one pure-Python
  :class:`~repro.core.streaming.StreamingOptimalEncoder` per
  (channel, lane), fed byte by byte.  The executable specification, also
  frozen as :class:`WriteController` (the pre-batch single-transaction
  API).
* ``vector`` (what ``auto`` resolves to with NumPy installed) — the
  batched write path: :meth:`MemoryController.submit` steers whole
  transaction batches, stripes cache lines across channels × lanes as
  packed byte strings, and advances every lane in lock-step through one
  :class:`~repro.core.streaming.BatchStreamingEncoder` round per commit
  window; statistics are tallied per lane as integer arrays, never per
  byte.

Both backends are bit-identical — per-lane invert decisions and integer
(zeros, transitions, beats) tallies — enforced by
``tests/ctrl/test_batch_parity.py`` across POD/SSTL/LVSTL operating
points, and ``benchmarks/test_ctrl_throughput.py`` gates the batched
path at >= 10x the reference on a 10k-transaction replay.

Energy accounting takes any :class:`~repro.phy.interface.Interface`
standard via :class:`~repro.phy.power.InterfaceEnergyModel`, including
the one-level DC term that POD-only accounting omits.
"""

from .controller import (
    CACHE_LINE_BYTES,
    ControllerStatistics,
    LaneState,
    MemoryController,
    WriteController,
    WriteTransaction,
    compare_controllers,
    transactions_from_bytes,
)

__all__ = [
    "CACHE_LINE_BYTES",
    "ControllerStatistics",
    "LaneState",
    "MemoryController",
    "WriteController",
    "WriteTransaction",
    "compare_controllers",
    "transactions_from_bytes",
]
