"""Write-path memory-controller model.

Sits one level above :class:`repro.phy.bus.MemoryBus`: accepts write
*transactions* (address + payload, e.g. cache-line evictions), steers
them to a channel by address, stripes each channel's data across its byte
lanes, and encodes each lane with the windowed-trellis streaming
optimiser so the DBI decisions exploit lookahead across the write queue —
the deployment context the paper's conclusion sketches for
controller-side encoding.

Two execution backends share one semantics (see
:class:`MemoryController`):

* ``reference`` — one :class:`~repro.core.streaming.StreamingOptimalEncoder`
  per (channel, lane), fed byte by byte: the executable specification.
* ``vector`` — all ``channels × byte_lanes`` lane streams advance in
  lock-step through one :class:`~repro.core.streaming.BatchStreamingEncoder`
  (the PR-1 batched Viterbi kernel with per-row boundary words), with
  payload striping done as packed byte-string slices and statistics
  tallied per lane without any per-byte bookkeeping.

The two are **bit-identical** — same per-lane invert decisions, same
integer activity tallies — which ``tests/ctrl/test_batch_parity.py``
enforces across POD/SSTL/LVSTL operating points.

Energy accounting reuses :class:`repro.phy.power.InterfaceEnergyModel`
(including the one-level term for non-POD interfaces), so
controller-level results are directly comparable with the per-burst
figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.bitops import WORD_WIDTH, make_word, transitions, zeros_in_word
from ..core.costs import CostModel
from ..core.streaming import BatchStreamingEncoder, StreamingOptimalEncoder
from ..core.vectorized import get_default_backend, resolve_backend
from ..phy.bus import BusStatistics
from ..phy.power import InterfaceEnergyModel
from .adaptive import AdaptiveCostTracker, OperatingPoint, OperatingPointSchedule

#: Typical cache-line size; transactions default to this granularity.
CACHE_LINE_BYTES = 64

#: ``backend="auto"`` picks the vector path only when the batch holds at
#: least this many (channels × byte_lanes) × window trellis cells per
#: lock-step round.  Below it, NumPy call overhead dominates the tiny
#: arrays and the per-byte reference is as fast or faster (measured
#: crossover ≈ 32–64 cells; ``BENCH_ctrl_throughput.json`` showed 1.9×
#: *ungated* at the 2ch×4lane GDDR-like geometry precisely because the
#: vector win shrinks with the row count).  Explicit ``backend="vector"``
#: is always honoured.
AUTO_VECTOR_MIN_CELLS = 64


@dataclass(frozen=True)
class WriteTransaction:
    """One write request: *data* stored starting at *address*."""

    address: int
    data: bytes

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")
        if not self.data:
            raise ValueError("transaction data must be non-empty")


def transactions_from_bytes(payload: bytes, line_bytes: int = CACHE_LINE_BYTES,
                            base_address: int = 0) -> List[WriteTransaction]:
    """Chop a flat byte stream into consecutive cache-line transactions.

    The standard adapter from :mod:`repro.workloads.traces` byte payloads
    to the controller's transaction interface: line *i* lands at
    ``base_address + i * line_bytes``, so a controller whose
    ``line_bytes`` matches walks the channels round-robin.

    >>> [t.address for t in transactions_from_bytes(bytes(130), 64)]
    [0, 64, 128]
    """
    if line_bytes < 1:
        raise ValueError(f"line_bytes must be >= 1, got {line_bytes}")
    if not payload:
        raise ValueError("payload must be non-empty")
    return [WriteTransaction(base_address + start, payload[start:start + line_bytes])
            for start in range(0, len(payload), line_bytes)]


def transactions_from_source(source, line_bytes: int = CACHE_LINE_BYTES,
                             base_address: int = 0
                             ) -> Iterator[List[WriteTransaction]]:
    """Generator twin of :func:`transactions_from_bytes` over a chunked
    source — the bounded-memory trace adapter.

    *source* is a :class:`repro.workloads.source.TraceSource` (or any
    iterable of byte chunks).  Yields one transaction batch per source
    chunk, holding at most one chunk plus a sub-line remainder in memory;
    the remainder of a chunk that ends mid-line is carried into the next
    batch, so the produced (address, data) sequence is **identical** to
    ``transactions_from_bytes(b"".join(chunks), ...)`` for every possible
    chunking — the seam invariant ``tests/ctrl/test_chunk_seams.py``
    enforces.

    >>> batches = transactions_from_source([bytes(100), bytes(30)], 64)
    >>> [[t.address for t in batch] for batch in batches]
    [[0, 64], [128]]
    """
    if line_bytes < 1:
        raise ValueError(f"line_bytes must be >= 1, got {line_bytes}")
    chunks = source.chunks() if hasattr(source, "chunks") else iter(source)
    remainder = b""
    address = base_address
    empty = True
    for chunk in chunks:
        data = remainder + bytes(chunk)
        if not data:
            continue
        empty = False
        cut = len(data) - len(data) % line_bytes
        if cut:
            yield [WriteTransaction(address + start,
                                    data[start:start + line_bytes])
                   for start in range(0, cut, line_bytes)]
            address += cut
        remainder = data[cut:]
    if remainder:
        yield [WriteTransaction(address, remainder)]
    elif empty:
        raise ValueError("trace source yielded no data")


@dataclass(frozen=True)
class SegmentActivity:
    """Committed activity of one operating-point segment (adaptive runs)."""

    label: str
    zeros: int
    transitions: int
    beats: int


@dataclass
class LaneState:
    """Streaming encoder plus activity tallies for one byte lane
    (reference backend only)."""

    encoder: StreamingOptimalEncoder
    zeros: int = 0
    transitions: int = 0
    beats: int = 0
    log: Optional[List[Tuple[int, bool]]] = None
    _last_word: int = 0x1FF

    def commit(self, decisions: Sequence[Tuple[int, bool]]) -> None:
        for byte, inverted in decisions:
            word = make_word(byte, inverted)
            self.zeros += zeros_in_word(word)
            self.transitions += transitions(self._last_word, word)
            self.beats += 1
            self._last_word = word
        if self.log is not None:
            self.log.extend((byte, bool(flag)) for byte, flag in decisions)


@dataclass
class ControllerStatistics:
    """Aggregate write-path statistics."""

    transactions: int = 0
    bytes_written: int = 0
    zeros: int = 0
    transitions: int = 0
    beats: int = 0
    energy_joules: float = 0.0

    @property
    def energy_per_byte(self) -> float:
        """Mean interface energy per payload byte, joules."""
        return (self.energy_joules / self.bytes_written
                if self.bytes_written else 0.0)


class MemoryController:
    """Multi-channel batched write path with cross-burst DBI lookahead.

    Parameters
    ----------
    channels:
        Number of memory channels; transactions map to a channel by
        address interleaving at cache-line granularity.
    byte_lanes:
        Byte lanes per channel (4 for a x32 graphics device).
    model:
        Cost model for the per-lane streaming encoders (use
        ``energy_model.cost_model()`` to optimise joules).
    window:
        Lookahead window of each streaming encoder, in bytes.
    energy_model:
        Optional operating point for energy accounting — any
        :class:`~repro.phy.interface.Interface` standard.
    line_bytes:
        Address-interleaving granularity of the channel steering
        (default: one cache line).  Use the granularity the transaction
        addresses were laid out with, or whole channels sit idle.
    backend:
        ``"reference"`` / ``"vector"`` / ``"auto"`` / ``None`` (process
        default) — resolved once at construction.  ``auto`` additionally
        falls back to the reference path when the link geometry is too
        small for batching to win (fewer than
        :data:`AUTO_VECTOR_MIN_CELLS` trellis cells per lock-step
        round); an explicit ``"vector"`` is always honoured.
    record:
        Keep every committed (byte, invert-flag) decision per lane, for
        differential and round-trip checks (costs memory; off by
        default).
    schedule:
        Optional :class:`~repro.ctrl.adaptive.OperatingPointSchedule`:
        submitted batches are split at the scheduled transaction/address
        boundaries, the trellis is re-priced with each segment's cost
        model, and per-segment activity is tallied (:meth:`segments`).
        Overrides ``model``.
    tracker:
        Optional :class:`~repro.ctrl.adaptive.AdaptiveCostTracker`: after
        every submit the committed integer deltas are folded into the
        tracker's EWMA rate estimate, and when its selected operating
        point changes the trellis is re-priced from the next window on
        (the paper's OPT-tracking inside the batched write path).
        Overrides ``model``; mutually exclusive with ``schedule``.

    >>> ctrl = MemoryController(channels=1, byte_lanes=2,
    ...                         model=CostModel.fixed(), window=8,
    ...                         backend="reference")
    >>> ctrl.submit([WriteTransaction(0, bytes(range(16)))])
    >>> ctrl.flush().bytes_written
    16
    """

    def __init__(self, channels: int = 1, byte_lanes: int = 4,
                 model: Optional[CostModel] = None, window: int = 16,
                 energy_model: Optional[InterfaceEnergyModel] = None,
                 line_bytes: int = CACHE_LINE_BYTES,
                 backend: Optional[str] = None, record: bool = False,
                 schedule: Optional[OperatingPointSchedule] = None,
                 tracker: Optional[AdaptiveCostTracker] = None):
        if channels < 1:
            raise ValueError(f"channels must be >= 1, got {channels}")
        if byte_lanes < 1:
            raise ValueError(f"byte_lanes must be >= 1, got {byte_lanes}")
        if line_bytes < 1:
            raise ValueError(f"line_bytes must be >= 1, got {line_bytes}")
        if schedule is not None and tracker is not None:
            raise ValueError(
                "pass either schedule= (planned switching) or tracker= "
                "(measured switching), not both")
        self.channels = channels
        self.byte_lanes = byte_lanes
        self.line_bytes = line_bytes
        self.model = model if model is not None else CostModel.fixed()
        self.window = window
        self.energy_model = energy_model
        self.schedule = schedule
        self.tracker = tracker
        self._schedule_segment = 0
        self._segment_marks: List[Tuple[str, Tuple[int, int, int]]] = []
        self._observed = (0, 0, 0)
        if schedule is not None:
            initial = schedule.point_at(0)
            self._points_by_label = schedule.points_by_label()
        elif tracker is not None:
            initial = tracker.current
            self._points_by_label = tracker.points_by_label()
        else:
            initial = None
            self._points_by_label: Dict[str, OperatingPoint] = {}
        if initial is not None:
            self.model = initial.cost_model()
            self._active_label: Optional[str] = initial.label
        else:
            self._active_label = None
        requested = backend if backend is not None else get_default_backend()
        self.backend = resolve_backend(backend)
        if (requested == "auto" and self.backend == "vector"
                and channels * byte_lanes * window < AUTO_VECTOR_MIN_CELLS):
            self.backend = "reference"
        self.record = record
        self._transactions = 0
        self._bytes_written = 0
        self._channel_transactions = [0] * channels
        if self.backend == "vector":
            self._batch: Optional[BatchStreamingEncoder] = BatchStreamingEncoder(
                self.model, rows=channels * byte_lanes, window=window,
                record=record)
            self._ref_lanes: Optional[Dict[Tuple[int, int], LaneState]] = None
        else:
            self._batch = None
            self._ref_lanes = {
                (channel, lane): LaneState(
                    encoder=StreamingOptimalEncoder(self.model, window=window),
                    log=[] if record else None)
                for channel in range(channels)
                for lane in range(byte_lanes)
            }

    # -- steering and striping ----------------------------------------------
    def channel_of(self, address: int) -> int:
        """Address-interleaved channel mapping at ``line_bytes`` granularity."""
        return (address // self.line_bytes) % self.channels

    def _row_of(self, channel: int, lane: int) -> int:
        return channel * self.byte_lanes + lane

    def _stripe(self, per_channel: List[List[bytes]]) -> List[bytes]:
        """Per-row lane streams for one submitted batch.

        Lane *l* of a channel carries bytes ``l, l+L, l+2L, ...`` of each
        transaction routed there, in submission order — the same striping
        a per-byte loop produces, done as C-level byte-string slices.
        """
        streams: List[bytes] = []
        for payloads in per_channel:
            for lane in range(self.byte_lanes):
                streams.append(b"".join(data[lane::self.byte_lanes]
                                        for data in payloads))
        return streams

    # -- public API ---------------------------------------------------------
    def submit(self, batch: Sequence[WriteTransaction]) -> None:
        """Queue a transaction batch (encoding happens incrementally).

        The whole batch is steered, striped and pushed through the lane
        encoders in one pass; decisions whose lookahead window fills are
        committed, the rest stay pending until more data or
        :meth:`flush` arrives.

        With a ``schedule``, the batch is split at the scheduled
        transaction/address boundaries and each run is pushed under its
        segment's cost model.  With a ``tracker``, the committed integer
        deltas of this submit are folded into the EWMA estimate
        afterwards, and a changed selection re-prices the trellis for
        the *next* submit — so in a chunked replay the tracker updates
        once per chunk.  Either way the decision stream is a
        deterministic function of the submitted transactions, identical
        on both backends.
        """
        if self.schedule is not None:
            self._submit_scheduled(batch)
            return
        self._submit_run(batch)
        if self.tracker is not None:
            self._observe_and_track()

    def submit_source(self, source,
                      base_address: int = 0) -> None:
        """Stream a whole trace source through :meth:`submit`, one chunk
        of transactions at a time (bounded memory at any trace size)."""
        for batch in transactions_from_source(source, self.line_bytes,
                                              base_address=base_address):
            self.submit(batch)

    def _submit_scheduled(self, batch: Sequence[WriteTransaction]) -> None:
        """Split a batch at schedule boundaries, re-pricing at each."""
        run: List[WriteTransaction] = []
        for transaction in batch:
            segment = self.schedule.segment_for(
                self._transactions + len(run), transaction.address)
            if segment != self._schedule_segment:
                if run:
                    self._submit_run(run)
                    run = []
                self._switch_point(self.schedule.point_at(segment))
                self._schedule_segment = segment
            run.append(transaction)
        if run:
            self._submit_run(run)

    def _submit_run(self, batch: Sequence[WriteTransaction]) -> None:
        per_channel: List[List[bytes]] = [[] for _ in range(self.channels)]
        for transaction in batch:
            channel = self.channel_of(transaction.address)
            per_channel[channel].append(transaction.data)
            self._channel_transactions[channel] += 1
            self._transactions += 1
            self._bytes_written += len(transaction.data)
        streams = self._stripe(per_channel)
        if self._batch is not None:
            self._batch.push(streams)
        else:
            for row, stream in enumerate(streams):
                lane = self._ref_lanes[divmod(row, self.byte_lanes)]
                lane.commit(lane.encoder.push(stream))

    def write(self, transaction: WriteTransaction) -> None:
        """Queue one transaction (single-item :meth:`submit`)."""
        self.submit([transaction])

    def flush(self) -> ControllerStatistics:
        """Drain every lane's pending window and return total statistics."""
        if self._batch is not None:
            self._batch.flush()
        else:
            for lane in self._ref_lanes.values():
                lane.commit(lane.encoder.flush())
        return self.statistics()

    # -- adaptive operating points -------------------------------------------
    def _switch_point(self, point: OperatingPoint) -> None:
        """Close the current segment and re-price the lane encoders.

        Pending window bytes are *not* re-attributed: they commit under
        the new model and count toward the new segment — switching takes
        effect at the commit boundary, which both backends hit
        identically.
        """
        self._segment_marks.append((self._active_label,
                                    self._committed_totals()))
        self._active_label = point.label
        self.model = point.cost_model()
        if self._batch is not None:
            self._batch.set_model(self.model)
        else:
            for lane in self._ref_lanes.values():
                lane.encoder.set_model(self.model)

    def _observe_and_track(self) -> None:
        zeros, n_transitions, beats = self._committed_totals()
        seen_zeros, seen_transitions, seen_beats = self._observed
        if beats > seen_beats:
            self.tracker.observe(zeros - seen_zeros,
                                 n_transitions - seen_transitions,
                                 beats - seen_beats)
            self._observed = (zeros, n_transitions, beats)
            selected = self.tracker.select()
            if selected.label != self._active_label:
                self._switch_point(selected)

    def _committed_totals(self) -> Tuple[int, int, int]:
        """Committed (zeros, transitions, beats) summed over all lanes."""
        if self._batch is not None:
            return (int(self._batch._zeros.sum()),
                    int(self._batch._transitions.sum()),
                    int(self._batch._beats.sum()))
        zeros = n_transitions = beats = 0
        for lane in self._ref_lanes.values():
            zeros += lane.zeros
            n_transitions += lane.transitions
            beats += lane.beats
        return zeros, n_transitions, beats

    def segments(self) -> List[SegmentActivity]:
        """Per-operating-point committed activity (adaptive runs only).

        One row per dwell interval in switch order (a revisited point
        gets a new row); the rows' tallies sum exactly to
        :meth:`statistics`.  Empty without ``schedule``/``tracker``.
        Call after :meth:`flush` for final totals.
        """
        if self._active_label is None:
            return []
        rows: List[SegmentActivity] = []
        previous = (0, 0, 0)
        marks = self._segment_marks + [(self._active_label,
                                        self._committed_totals())]
        for label, totals in marks:
            delta = SegmentActivity(
                label=label, zeros=totals[0] - previous[0],
                transitions=totals[1] - previous[1],
                beats=totals[2] - previous[2])
            previous = totals
            if delta.beats or not rows:
                rows.append(delta)
        return rows

    def adaptive_energy_joules(self) -> float:
        """Total energy with every segment priced at its own operating
        point — the adaptive twin of ``statistics().energy_joules``."""
        energy = 0.0
        for segment in self.segments():
            point = self._points_by_label[segment.label]
            energy += point.energy_model().burst_energy(
                segment.transitions, segment.zeros,
                lane_beats=WORD_WIDTH * segment.beats)
        return energy

    # -- accounting ----------------------------------------------------------
    def lane_activity(self, channel: int, lane: int) -> Tuple[int, int, int]:
        """Committed ``(zeros, transitions, beats)`` of one byte lane."""
        self._check_lane(channel, lane)
        if self._batch is not None:
            row = self._row_of(channel, lane)
            return (int(self._batch.zeros[row]),
                    int(self._batch.transitions[row]),
                    int(self._batch.beats[row]))
        state = self._ref_lanes[(channel, lane)]
        return state.zeros, state.transitions, state.beats

    def lane_statistics(self, channel: int, lane: int) -> BusStatistics:
        """One lane's tallies as a :class:`~repro.phy.bus.BusStatistics` view.

        ``bursts`` is 0 — the streaming write path has no burst framing;
        ``beats`` counts committed byte-beats.
        """
        zeros, n_transitions, beats = self.lane_activity(channel, lane)
        energy = 0.0
        if self.energy_model is not None:
            energy = self.energy_model.burst_energy(
                n_transitions, zeros, lane_beats=WORD_WIDTH * beats)
        return BusStatistics(bursts=0, beats=beats, zeros=zeros,
                             transitions=n_transitions, energy_joules=energy)

    def channel_statistics(self, channel: int) -> BusStatistics:
        """One channel's totals — exactly the merge of its lane views,
        plus the channel's transaction count in ``bursts``."""
        merged = BusStatistics()
        for lane in range(self.byte_lanes):
            merged = merged.merge(self.lane_statistics(channel, lane))
        merged.bursts = self._channel_transactions[channel]
        return merged

    def statistics(self) -> ControllerStatistics:
        """Current totals (pending, un-committed bytes are not counted)."""
        zeros = n_transitions = beats = 0
        for channel in range(self.channels):
            for lane in range(self.byte_lanes):
                lane_zeros, lane_transitions, lane_beats = \
                    self.lane_activity(channel, lane)
                zeros += lane_zeros
                n_transitions += lane_transitions
                beats += lane_beats
        energy = 0.0
        if self.energy_model is not None:
            energy = self.energy_model.burst_energy(
                n_transitions, zeros, lane_beats=WORD_WIDTH * beats)
        return ControllerStatistics(
            transactions=self._transactions,
            bytes_written=self._bytes_written,
            zeros=zeros,
            transitions=n_transitions,
            beats=beats,
            energy_joules=energy,
        )

    def pending_bytes(self) -> int:
        """Bytes buffered in encoder windows, not yet committed."""
        if self._batch is not None:
            return sum(self._batch.pending_counts())
        return sum(len(lane.encoder._pending)
                   for lane in self._ref_lanes.values())

    def lane_decisions(self, channel: int, lane: int) -> List[Tuple[int, bool]]:
        """Committed (byte, invert-flag) pairs of one lane (``record=True``)."""
        self._check_lane(channel, lane)
        if not self.record:
            raise RuntimeError("decisions are only kept when record=True")
        if self._batch is not None:
            return self._batch.decisions(self._row_of(channel, lane))
        return list(self._ref_lanes[(channel, lane)].log)

    def _check_lane(self, channel: int, lane: int) -> None:
        if not 0 <= channel < self.channels:
            raise IndexError(f"channel {channel} out of range [0, {self.channels})")
        if not 0 <= lane < self.byte_lanes:
            raise IndexError(f"lane {lane} out of range [0, {self.byte_lanes})")


class WriteController(MemoryController):
    """The per-byte reference write path (pre-PR-5 API, kept as the spec).

    Pins ``backend="reference"`` and exposes the per-lane
    :class:`LaneState` map that the original single-transaction API
    offered; :class:`MemoryController` with ``backend="vector"`` is the
    batched production path.
    """

    def __init__(self, channels: int = 1, byte_lanes: int = 4,
                 model: Optional[CostModel] = None, window: int = 16,
                 energy_model: Optional[InterfaceEnergyModel] = None,
                 record: bool = False):
        super().__init__(channels=channels, byte_lanes=byte_lanes,
                         model=model, window=window,
                         energy_model=energy_model, backend="reference",
                         record=record)

    @property
    def lanes(self) -> Dict[Tuple[int, int], LaneState]:
        """Per-(channel, lane) streaming-encoder states."""
        return self._ref_lanes


def compare_controllers(payloads: Sequence[bytes], model: CostModel,
                        windows: Sequence[int] = (1, 8, 32),
                        byte_lanes: int = 4) -> List[Tuple[int, float]]:
    """(window, mean cost per byte) rows for a write stream.

    Used by tests/examples to show the lookahead benefit at the
    controller level.
    """
    rows: List[Tuple[int, float]] = []
    for window in windows:
        controller = WriteController(channels=1, byte_lanes=byte_lanes,
                                     model=model, window=window)
        for index, payload in enumerate(payloads):
            controller.write(WriteTransaction(index * CACHE_LINE_BYTES,
                                              payload))
        stats = controller.flush()
        cost = model.activity_cost(stats.transitions, stats.zeros)
        rows.append((window, cost / stats.bytes_written))
    return rows
