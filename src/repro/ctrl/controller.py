"""Write-path memory-controller model.

Sits one level above :class:`repro.phy.bus.MemoryBus`: accepts write
*transactions* (address + payload, e.g. cache-line evictions), steers them
to a channel by address, stripes each channel's data across its byte
lanes, and encodes each lane with a
:class:`repro.core.streaming.StreamingOptimalEncoder` so the DBI decisions
exploit lookahead across the write queue — the deployment context the
paper's conclusion sketches for controller-side encoding.

Energy accounting reuses :class:`repro.phy.power.InterfaceEnergyModel`, so
controller-level results are directly comparable with the per-burst
figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.bitops import make_word, transitions, zeros_in_word
from ..core.costs import CostModel
from ..core.streaming import StreamingOptimalEncoder
from ..phy.power import InterfaceEnergyModel

#: Typical cache-line size; transactions default to this granularity.
CACHE_LINE_BYTES = 64


@dataclass(frozen=True)
class WriteTransaction:
    """One write request: *data* stored starting at *address*."""

    address: int
    data: bytes

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")
        if not self.data:
            raise ValueError("transaction data must be non-empty")


@dataclass
class LaneState:
    """Streaming encoder plus activity tallies for one byte lane."""

    encoder: StreamingOptimalEncoder
    zeros: int = 0
    transitions: int = 0
    beats: int = 0
    _last_word: int = 0x1FF

    def commit(self, decisions: Sequence[Tuple[int, bool]]) -> None:
        for byte, inverted in decisions:
            word = make_word(byte, inverted)
            self.zeros += zeros_in_word(word)
            self.transitions += transitions(self._last_word, word)
            self.beats += 1
            self._last_word = word


@dataclass
class ControllerStatistics:
    """Aggregate write-path statistics."""

    transactions: int = 0
    bytes_written: int = 0
    zeros: int = 0
    transitions: int = 0
    energy_joules: float = 0.0

    @property
    def energy_per_byte(self) -> float:
        """Mean interface energy per payload byte, joules."""
        return (self.energy_joules / self.bytes_written
                if self.bytes_written else 0.0)


class WriteController:
    """Multi-channel write-path controller with cross-burst DBI lookahead.

    Parameters
    ----------
    channels:
        Number of memory channels; transactions map to a channel by
        address interleaving at cache-line granularity.
    byte_lanes:
        Byte lanes per channel (4 for a x32 graphics device).
    model:
        Cost model for the per-lane streaming encoders (use
        ``energy_model.cost_model()`` to optimise joules).
    window:
        Lookahead window of each streaming encoder, in bytes.
    energy_model:
        Optional operating point for energy accounting.

    >>> ctrl = WriteController(channels=1, byte_lanes=2,
    ...                        model=CostModel.fixed(), window=8)
    >>> ctrl.write(WriteTransaction(0, bytes(range(16))))
    >>> ctrl.flush().bytes_written
    16
    """

    def __init__(self, channels: int = 1, byte_lanes: int = 4,
                 model: Optional[CostModel] = None, window: int = 16,
                 energy_model: Optional[InterfaceEnergyModel] = None):
        if channels < 1:
            raise ValueError(f"channels must be >= 1, got {channels}")
        if byte_lanes < 1:
            raise ValueError(f"byte_lanes must be >= 1, got {byte_lanes}")
        self.channels = channels
        self.byte_lanes = byte_lanes
        self.model = model if model is not None else CostModel.fixed()
        self.energy_model = energy_model
        self.lanes: Dict[Tuple[int, int], LaneState] = {
            (channel, lane): LaneState(
                encoder=StreamingOptimalEncoder(self.model, window=window))
            for channel in range(channels)
            for lane in range(byte_lanes)
        }
        self._stats = ControllerStatistics()

    # -- public API ---------------------------------------------------------
    def channel_of(self, address: int) -> int:
        """Address-interleaved channel mapping at cache-line granularity."""
        return (address // CACHE_LINE_BYTES) % self.channels

    def write(self, transaction: WriteTransaction) -> None:
        """Queue one transaction (encoding happens incrementally)."""
        channel = self.channel_of(transaction.address)
        self._stats.transactions += 1
        self._stats.bytes_written += len(transaction.data)
        for offset, byte in enumerate(transaction.data):
            lane = self.lanes[(channel, offset % self.byte_lanes)]
            lane.commit(lane.encoder.push([byte]))

    def flush(self) -> ControllerStatistics:
        """Drain every lane's pending window and return total statistics."""
        for lane in self.lanes.values():
            lane.commit(lane.encoder.flush())
        return self.statistics()

    def statistics(self) -> ControllerStatistics:
        """Current totals (pending, un-flushed bytes are not counted)."""
        zeros = sum(lane.zeros for lane in self.lanes.values())
        n_transitions = sum(lane.transitions for lane in self.lanes.values())
        energy = 0.0
        if self.energy_model is not None:
            energy = self.energy_model.burst_energy(n_transitions, zeros)
        return ControllerStatistics(
            transactions=self._stats.transactions,
            bytes_written=self._stats.bytes_written,
            zeros=zeros,
            transitions=n_transitions,
            energy_joules=energy,
        )

    def pending_bytes(self) -> int:
        """Bytes buffered in encoder windows, not yet committed."""
        return sum(len(lane.encoder._pending) for lane in self.lanes.values())


def compare_controllers(payloads: Sequence[bytes], model: CostModel,
                        windows: Sequence[int] = (1, 8, 32),
                        byte_lanes: int = 4) -> List[Tuple[int, float]]:
    """(window, mean cost per byte) rows for a write stream.

    Used by tests/examples to show the lookahead benefit at the
    controller level.
    """
    rows: List[Tuple[int, float]] = []
    for window in windows:
        controller = WriteController(channels=1, byte_lanes=byte_lanes,
                                     model=model, window=window)
        for index, payload in enumerate(payloads):
            controller.write(WriteTransaction(index * CACHE_LINE_BYTES,
                                              payload))
        stats = controller.flush()
        cost = model.activity_cost(stats.transitions, stats.zeros)
        rows.append((window, cost / stats.bytes_written))
    return rows
