"""Reusable datapath components for the encoder netlists.

Structural builders over :class:`~repro.hw.netlist.Netlist`: adders,
population counts, comparators, multiplexers and small multipliers — the
vocabulary of the paper's Fig. 5.  Every builder returns LSB-first net
lists, and every builder has a bit-true unit test against its Python
integer semantics.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .netlist import Netlist


def half_adder(nl: Netlist, a: int, b: int) -> Tuple[int, int]:
    """(sum, carry) of two bits."""
    return nl.gate("XOR2", a, b), nl.gate("AND2", a, b)


def full_adder(nl: Netlist, a: int, b: int, cin: int) -> Tuple[int, int]:
    """(sum, carry) of three bits — the classic 5-gate mapping."""
    axb = nl.gate("XOR2", a, b)
    total = nl.gate("XOR2", axb, cin)
    carry_inner = nl.gate("AND2", axb, cin)
    carry_direct = nl.gate("AND2", a, b)
    carry = nl.gate("OR2", carry_inner, carry_direct)
    return total, carry


def ripple_adder(nl: Netlist, a_bits: Sequence[int], b_bits: Sequence[int],
                 cin: Optional[int] = None,
                 width: Optional[int] = None) -> List[int]:
    """Unsigned addition, result truncated/zero-extended to *width* bits.

    Operands of different widths are zero-extended; the default result
    width is ``max(len(a), len(b)) + 1`` so no precision is lost.
    """
    out_width = width if width is not None else max(len(a_bits), len(b_bits)) + 1
    if out_width < 1:
        raise ValueError("width must be >= 1")
    result: List[int] = []
    carry = cin
    for position in range(out_width):
        a = a_bits[position] if position < len(a_bits) else None
        b = b_bits[position] if position < len(b_bits) else None
        operands = [bit for bit in (a, b, carry) if bit is not None]
        if not operands:
            result.append(nl.constant(0, 1)[0])
            carry = None
        elif len(operands) == 1:
            result.append(operands[0])
            carry = None
        elif len(operands) == 2:
            total, carry = half_adder(nl, operands[0], operands[1])
            result.append(total)
        else:
            total, carry = full_adder(nl, *operands)
            result.append(total)
    return result


def add_many(nl: Netlist, operands: Sequence[Sequence[int]],
             width: int, adder: str = "ripple") -> List[int]:
    """Sum several unsigned operands into a *width*-bit result.

    ``adder`` selects the architecture: ``"ripple"`` (minimal gates) or
    ``"carry-select"`` (shorter critical path, more gates).
    """
    if not operands:
        raise ValueError("add_many needs at least one operand")
    if adder not in ("ripple", "carry-select"):
        raise ValueError(f"unknown adder architecture {adder!r}")
    acc = list(operands[0])
    for operand in operands[1:]:
        if adder == "carry-select":
            acc = carry_select_adder(nl, acc, operand, width=width)
        else:
            acc = ripple_adder(nl, acc, operand, width=width)
    # Truncate/extend to exactly `width`.
    acc = acc[:width]
    while len(acc) < width:
        acc.append(nl.constant(0, 1)[0])
    return acc


def _ripple_block(nl: Netlist, a_bits: Sequence[int], b_bits: Sequence[int],
                  cin: int) -> Tuple[List[int], int]:
    """Equal-width ripple addition returning (sums, carry-out)."""
    sums: List[int] = []
    carry = cin
    for a, b in zip(a_bits, b_bits):
        total, carry = full_adder(nl, a, b, carry)
        sums.append(total)
    return sums, carry


def carry_select_adder(nl: Netlist, a_bits: Sequence[int],
                       b_bits: Sequence[int], width: int,
                       block: int = 4) -> List[int]:
    """Carry-select addition: same function as :func:`ripple_adder`, but
    the carry chain is broken into *block*-bit segments whose two possible
    results are precomputed and muxed by the incoming carry.

    Trades gates (~1.7x per segment) for logic depth — the classic fix
    for the ripple chain that dominates the OPT encoder's critical path.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if block < 1:
        raise ValueError("block must be >= 1")
    zero = nl.constant(0, 1)[0]
    a_ext = list(a_bits)[:width] + [zero] * max(0, width - len(a_bits))
    b_ext = list(b_bits)[:width] + [zero] * max(0, width - len(b_bits))

    result: List[int] = []
    # First block ripples normally from carry-in 0.
    first_a, first_b = a_ext[:block], b_ext[:block]
    sums, carry = _ripple_block(nl, first_a, first_b, zero)
    result.extend(sums)
    position = block
    one = nl.constant(1, 1)[0]
    while position < width:
        seg_a = a_ext[position:position + block]
        seg_b = b_ext[position:position + block]
        sums0, carry0 = _ripple_block(nl, seg_a, seg_b, zero)
        sums1, carry1 = _ripple_block(nl, seg_a, seg_b, one)
        result.extend(mux_bus(nl, sums0, sums1, carry))
        carry = nl.gate("MUX2", carry0, carry1, carry)
        position += block
    return result[:width]


def popcount(nl: Netlist, bits: Sequence[int]) -> List[int]:
    """Population count of *bits* as a minimal-width unsigned bus.

    Built as a balanced adder tree (pairs of 1-bit counts merge into 2-bit
    counts and so on) — the POPCNT block of the paper's Fig. 5.
    """
    if not bits:
        raise ValueError("popcount needs at least one bit")
    counts: List[List[int]] = [[bit] for bit in bits]
    while len(counts) > 1:
        merged: List[List[int]] = []
        for index in range(0, len(counts) - 1, 2):
            merged.append(ripple_adder(nl, counts[index], counts[index + 1]))
        if len(counts) % 2:
            merged.append(counts[-1])
        counts = merged
    result = counts[0]
    # Trim leading bits beyond the maximum representable count (len(bits)).
    max_width = max(1, len(bits).bit_length())
    return result[:max_width]


def invert_bus(nl: Netlist, bits: Sequence[int]) -> List[int]:
    """Bitwise complement of a bus."""
    return [nl.gate("INV", bit) for bit in bits]


def xor_bus(nl: Netlist, a_bits: Sequence[int], b_bits: Sequence[int]) -> List[int]:
    """Bitwise XOR of two equal-width buses."""
    if len(a_bits) != len(b_bits):
        raise ValueError(f"width mismatch: {len(a_bits)} vs {len(b_bits)}")
    return [nl.gate("XOR2", a, b) for a, b in zip(a_bits, b_bits)]


def xor_with_bit(nl: Netlist, bits: Sequence[int], control: int) -> List[int]:
    """XOR every bit of a bus with one control bit (conditional inversion).

    This is the byte-inversion bank at the bottom of the paper's Fig. 5.
    """
    return [nl.gate("XOR2", bit, control) for bit in bits]


def mux_bus(nl: Netlist, a_bits: Sequence[int], b_bits: Sequence[int],
            select: int) -> List[int]:
    """Per-bit 2:1 mux: result = b when select else a."""
    if len(a_bits) != len(b_bits):
        raise ValueError(f"width mismatch: {len(a_bits)} vs {len(b_bits)}")
    return [nl.gate("MUX2", a, b, select) for a, b in zip(a_bits, b_bits)]


def less_than(nl: Netlist, a_bits: Sequence[int], b_bits: Sequence[int]) -> int:
    """Unsigned comparison ``a < b`` as one bit.

    Computed as the carry-out of ``a + ~b + 1`` (i.e. a − b): no carry-out
    means a borrow occurred, hence a < b.
    """
    width = max(len(a_bits), len(b_bits))
    a_ext = list(a_bits) + [nl.constant(0, 1)[0]] * (width - len(a_bits))
    b_ext = list(b_bits) + [nl.constant(0, 1)[0]] * (width - len(b_bits))
    b_inverted = invert_bus(nl, b_ext)
    carry = nl.constant(1, 1)[0]
    for a, b in zip(a_ext, b_inverted):
        __, carry = full_adder(nl, a, b, carry)
    return nl.gate("INV", carry)


def min_select(nl: Netlist, a_bits: Sequence[int], b_bits: Sequence[int],
               ) -> Tuple[List[int], int]:
    """(min(a, b), selector) with selector = 1 when b is strictly smaller.

    The compare-and-forward block of Fig. 5: the selector bit is what the
    backtracking mux chain stores.
    """
    select_b = less_than(nl, b_bits, a_bits)
    width = max(len(a_bits), len(b_bits))
    zero = nl.constant(0, 1)[0]
    a_ext = list(a_bits) + [zero] * (width - len(a_bits))
    b_ext = list(b_bits) + [zero] * (width - len(b_bits))
    return mux_bus(nl, a_ext, b_ext, select_b), select_b


def subtract_from_const(nl: Netlist, constant_value: int,
                        bits: Sequence[int], width: int) -> List[int]:
    """``constant_value - bits`` for inputs guaranteed ≤ constant_value.

    Implemented as ``constant + ~bits + 1`` truncated to *width* bits —
    used for the ``8 − x`` / ``9 − x`` terms of Fig. 5.
    """
    if constant_value < 0:
        raise ValueError("constant_value must be non-negative")
    inverted = invert_bus(nl, bits)
    # Sign-extend the inverted operand with ones up to `width`.
    one = nl.constant(1, 1)[0]
    inverted = inverted + [one] * (width - len(inverted))
    const_bits = nl.constant(constant_value & ((1 << width) - 1), width)
    cin = nl.constant(1, 1)[0]
    result: List[int] = []
    carry = cin
    for a, b in zip(const_bits, inverted[:width]):
        total, carry = full_adder(nl, a, b, carry)
        result.append(total)
    return result


def multiply(nl: Netlist, a_bits: Sequence[int], b_bits: Sequence[int]) -> List[int]:
    """Unsigned array multiplier (shift-and-add partial products).

    Used for the ``·α`` / ``·β`` stages of the configurable-coefficient
    encoder; the paper's fixed-coefficient design exists precisely to
    remove these.
    """
    if not a_bits or not b_bits:
        raise ValueError("multiply needs non-empty operands")
    width = len(a_bits) + len(b_bits)
    zero = nl.constant(0, 1)[0]
    acc: List[int] = [zero] * width
    for shift, b in enumerate(b_bits):
        partial = [zero] * shift + [nl.gate("AND2", a, b) for a in a_bits]
        partial += [zero] * (width - len(partial))
        acc = ripple_adder(nl, acc, partial, width=width)
    return acc


def bus_value(bits: Sequence[int], values: Sequence[int]) -> int:
    """Helper for tests: pack simulated net *values* of a bus into an int."""
    word = 0
    for position, net in enumerate(bits):
        word |= values[net] << position
    return word
