"""Structural gate-level models of the DBI encoders (paper Fig. 5).

Each builder returns a bit-true :class:`~repro.hw.netlist.Netlist` whose
I/O contract is shared across designs:

* inputs ``byte0 .. byte{n-1}`` (8 bits each) — the burst payload;
* input ``prev_word`` (9 bits) — the bus state before the burst
  (0x1FF = idle high, the paper's boundary condition);
* configurable designs add ``alpha`` / ``beta`` coefficient inputs;
* outputs ``flags`` (n bits, bit *i* = byte *i* transmitted inverted) and
  ``word0 .. word{n-1}`` (9 bits each) — the wire words.

The optimal encoders implement the paper's Fig. 5 microarchitecture
literally: per-byte processing blocks with two POPCNT units, the four
candidate path costs, compare-and-forward minimum selection, and the
backtracking mux chain that recovers the DBI pattern from the stored
comparator decisions.  Functional equivalence with the algorithmic
encoders of :mod:`repro.core` is asserted by the integration tests.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .components import (
    add_many,
    invert_bus,
    less_than,
    min_select,
    multiply,
    popcount,
    ripple_adder,
    subtract_from_const,
    xor_bus,
    xor_with_bit,
)
from .netlist import Netlist

#: Cost-accumulator width of the fixed-coefficient design: the worst-case
#: burst cost with alpha = beta = 1 is 8 bytes x 18 = 144 < 256.
FIXED_COST_WIDTH = 8

#: Cost-accumulator width with 3-bit coefficients: worst case ~1120 < 2048.
CONFIG_COST_WIDTH = 11


def _declare_burst_inputs(nl: Netlist, burst_length: int) -> Tuple[List[List[int]], List[int]]:
    byte_buses = [nl.add_input(f"byte{i}", 8) for i in range(burst_length)]
    prev_word = nl.add_input("prev_word", 9)
    return byte_buses, prev_word


def _emit_words(nl: Netlist, byte_buses: List[List[int]], flags: List[int]) -> None:
    nl.mark_output("flags", flags)
    for index, (byte_bits, flag) in enumerate(zip(byte_buses, flags)):
        data_out = xor_with_bit(nl, byte_bits, flag)
        dbi_out = nl.gate("INV", flag)
        nl.mark_output(f"word{index}", data_out + [dbi_out])


def build_dc_encoder(burst_length: int = 8) -> Netlist:
    """DBI DC: POPCNT + threshold comparator per byte (no inter-byte logic).

    Invert when the byte has >= 5 zeros, i.e. popcount <= 3, i.e. both
    high bits of the 4-bit popcount are clear — a single NOR2.
    """
    if burst_length < 1:
        raise ValueError("burst_length must be >= 1")
    nl = Netlist("dbi-dc")
    byte_buses, _prev = _declare_burst_inputs(nl, burst_length)
    flags: List[int] = []
    for byte_bits in byte_buses:
        ones = popcount(nl, byte_bits)  # 4 bits, value 0..8
        flags.append(nl.gate("NOR2", ones[3], ones[2]))
    _emit_words(nl, byte_buses, flags)
    return nl


def build_ac_encoder(burst_length: int = 8) -> Netlist:
    """DBI AC: greedy transition comparison, chained through the burst.

    Each stage counts the data-lane toggles ``x`` against the previously
    *encoded* word, adds the DBI-lane toggle for both candidate polarities
    and inverts on strict improvement.  The stage-to-stage dependency makes
    this a serial chain — visible in its logic depth versus DBI DC.
    """
    if burst_length < 1:
        raise ValueError("burst_length must be >= 1")
    nl = Netlist("dbi-ac")
    byte_buses, prev_word = _declare_burst_inputs(nl, burst_length)
    prev_data = prev_word[:8]
    prev_dbi = prev_word[8]
    flags: List[int] = []
    for byte_bits in byte_buses:
        x = popcount(nl, xor_bus(nl, prev_data, byte_bits))  # 0..8, 4 bits
        not_prev_dbi = nl.gate("INV", prev_dbi)
        trans_raw = ripple_adder(nl, x, [not_prev_dbi])            # 0..9
        eight_minus_x = subtract_from_const(nl, 8, x, 4)
        trans_inv = ripple_adder(nl, eight_minus_x, [prev_dbi])    # 0..9
        invert = less_than(nl, trans_inv, trans_raw)
        flags.append(invert)
        prev_data = xor_with_bit(nl, byte_bits, invert)
        prev_dbi = nl.gate("INV", invert)
    _emit_words(nl, byte_buses, flags)
    return nl


def _weighted(nl: Netlist, term_bits: List[int],
              coeff_bits: Optional[List[int]]) -> List[int]:
    """``coeff * term`` — or the bare term for hardwired unit coefficients."""
    if coeff_bits is None:
        return term_bits
    return multiply(nl, term_bits, coeff_bits)


def build_opt_encoder(burst_length: int = 8,
                      coefficient_bits: Optional[int] = None,
                      adder: str = "ripple") -> Netlist:
    """DBI OPT — the paper's Fig. 5 shortest-path encoder.

    With ``coefficient_bits=None`` this is the fixed alpha = beta = 1
    design (no multipliers, narrow datapath); with ``coefficient_bits=b``
    the configurable design with ``alpha``/``beta`` inputs and array
    multipliers in every processing block.

    Forward pass per block *i*:

    * ``x`` = POPCNT(byte(i-1) XOR byte(i)) — data-lane toggles when both
      bytes keep the same polarity; ``9 - x`` covers opposite polarities
      (8 - x data toggles plus the DBI-lane toggle).
    * ``p`` = POPCNT(byte(i)); DC costs ``8 - p`` (raw, DBI=1 adds no
      zero) and ``p + 1`` (inverted, the DBI lane contributes one zero).
    * four candidate sums combine the incoming ``cost``/``cost_inv`` with
      the AC/DC terms; two compare-and-select units forward the minima and
      latch the selector bits.

    Backtracking: the cheaper final accumulator selects the last flag and
    the stored selectors are walked backwards through a mux chain.

    ``adder`` selects the cost-accumulator adder architecture:
    ``"ripple"`` (the minimal-area default) or ``"carry-select"``
    (shorter serial chain — see the adder-architecture ablation).
    """
    if burst_length < 1:
        raise ValueError("burst_length must be >= 1")
    if coefficient_bits is not None and coefficient_bits < 1:
        raise ValueError("coefficient_bits must be >= 1 when given")
    configurable = coefficient_bits is not None
    width = CONFIG_COST_WIDTH if configurable else FIXED_COST_WIDTH
    name = f"dbi-opt-q{coefficient_bits}" if configurable else "dbi-opt-fixed"
    if adder != "ripple":
        name = f"{name}-{adder}"
    nl = Netlist(name)
    byte_buses, prev_word = _declare_burst_inputs(nl, burst_length)
    alpha = nl.add_input("alpha", coefficient_bits) if configurable else None
    beta = nl.add_input("beta", coefficient_bits) if configurable else None

    cost_raw: List[int] = []
    cost_inv: List[int] = []
    select_raw: List[Optional[int]] = [None] * burst_length
    select_inv: List[Optional[int]] = [None] * burst_length

    for index, byte_bits in enumerate(byte_buses):
        reference = prev_word[:8] if index == 0 else byte_buses[index - 1]
        x = popcount(nl, xor_bus(nl, reference, byte_bits))  # 4 bits
        p = popcount(nl, byte_bits)                          # 4 bits
        eight_minus_p = subtract_from_const(nl, 8, p, 4)
        p_plus_1 = ripple_adder(nl, p, nl.constant(1, 1))[:4]
        dc_cost0 = _weighted(nl, eight_minus_p, beta)
        dc_cost1 = _weighted(nl, p_plus_1, beta)

        if index == 0:
            # The bus state fixes the predecessor polarity via its DBI bit.
            prev_dbi = prev_word[8]
            not_prev_dbi = nl.gate("INV", prev_dbi)
            trans_raw = ripple_adder(nl, x, [not_prev_dbi])          # 0..9
            eight_minus_x = subtract_from_const(nl, 8, x, 4)
            trans_inv = ripple_adder(nl, eight_minus_x, [prev_dbi])  # 0..9
            ac_raw = _weighted(nl, trans_raw, alpha)
            ac_inv = _weighted(nl, trans_inv, alpha)
            cost_raw = add_many(nl, [ac_raw, dc_cost0], width, adder=adder)
            cost_inv = add_many(nl, [ac_inv, dc_cost1], width, adder=adder)
            continue

        nine_minus_x = subtract_from_const(nl, 9, x, 4)
        ac_cost0 = _weighted(nl, x, alpha)             # same polarity
        ac_cost1 = _weighted(nl, nine_minus_x, alpha)  # polarity change
        option1 = add_many(nl, [cost_raw, ac_cost0, dc_cost0], width, adder=adder)
        option2 = add_many(nl, [cost_inv, ac_cost1, dc_cost0], width, adder=adder)
        option3 = add_many(nl, [cost_raw, ac_cost1, dc_cost1], width, adder=adder)
        option4 = add_many(nl, [cost_inv, ac_cost0, dc_cost1], width, adder=adder)
        cost_raw, select_raw[index] = min_select(nl, option1, option2)
        cost_inv, select_inv[index] = min_select(nl, option3, option4)

    # Backtracking mux chain (the m0/m1 muxes of Fig. 5).
    flags: List[int] = [nl.constant(0, 1)[0]] * burst_length
    flags[burst_length - 1] = less_than(nl, cost_inv, cost_raw)
    for index in range(burst_length - 1, 0, -1):
        flags[index - 1] = nl.gate("MUX2", select_raw[index],
                                   select_inv[index], flags[index])

    nl.mark_output("cost", cost_raw)
    nl.mark_output("cost_inv", cost_inv)
    _emit_words(nl, byte_buses, flags)
    return nl


def build_decoder(burst_length: int = 8) -> Netlist:
    """Receiver-side DBI decoder: conditional inversion per word.

    Inputs ``word0..word{n-1}`` (9 bits), outputs ``byte0..byte{n-1}``.
    Included to demonstrate that the decode path is scheme-independent and
    nearly free (one XOR bank per byte lane).
    """
    if burst_length < 1:
        raise ValueError("burst_length must be >= 1")
    nl = Netlist("dbi-decoder")
    for index in range(burst_length):
        word_bits = nl.add_input(f"word{index}", 9)
        invert = nl.gate("INV", word_bits[8])
        nl.mark_output(f"byte{index}", xor_with_bit(nl, word_bits[:8], invert))
    return nl
