"""Generic 32 nm-class standard-cell library model.

The paper synthesises its encoders with Synopsys Design Compiler and the
Synopsys 32 nm generic libraries.  That flow is proprietary, so this module
substitutes a compact cell library whose per-cell area, leakage, switching
energy and delay are calibrated to published 32 nm-generic-library
characteristics (saed32-class cells).  The goal is faithful *relative*
accounting — gate counts, datapath widths and logic depth drive every
Table I trend — with absolute numbers in the right order of magnitude.

Every combinational cell carries a boolean evaluation function so netlists
built from these cells are bit-true simulatable.  Each cell additionally
carries a *bitwise word form* of the same function (``word_function``):
the identical boolean operation applied lane-wise across every bit of a
machine word, which is what lets :mod:`repro.hw.bitsim` evaluate one gate
for W packed input vectors at once.  Word functions receive an explicit
all-ones ``mask`` as their first argument so complement is expressed as
``x ^ mask`` — correct both for arbitrary-precision Python ints (where
``~x`` would go negative) and for NumPy ``uint64`` lanes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

#: femtojoule in joules.
FEMTOJOULE = 1e-15

#: nanowatt in watts.
NANOWATT = 1e-9

#: picosecond in seconds.
PICOSECOND = 1e-12


@dataclass(frozen=True)
class Cell:
    """One standard cell.

    Parameters
    ----------
    name:
        Library name.
    n_inputs:
        Number of input pins.
    area_um2:
        Placed cell area in µm².
    leakage_nw:
        Static leakage power in nanowatts (32 nm generic libraries are
        notoriously leaky; values reflect that).
    toggle_energy_fj:
        Internal + output switching energy per output toggle, femtojoules.
    delay_ps:
        Pin-to-output propagation delay in picoseconds (nominal load).
    function:
        Boolean evaluation, mapping an input bit tuple to the output bit.
    word_function:
        Bit-parallel form of ``function``: ``word_function(mask, *words)``
        applies the boolean operation independently to every bit lane of
        the input words, where ``mask`` is the all-ones word of the active
        lane width (complement must be written ``x ^ mask``).  ``None``
        means no hand-written form exists; :mod:`repro.hw.bitsim` then
        synthesises one from the scalar truth table.
    """

    name: str
    n_inputs: int
    area_um2: float
    leakage_nw: float
    toggle_energy_fj: float
    delay_ps: float
    function: Callable[..., int]
    word_function: Optional[Callable[..., int]] = None

    def evaluate(self, *inputs: int) -> int:
        """Evaluate the cell on bit inputs (each 0 or 1)."""
        if len(inputs) != self.n_inputs:
            raise ValueError(
                f"{self.name} expects {self.n_inputs} inputs, got {len(inputs)}")
        return self.function(*inputs)

    def evaluate_words(self, mask: int, *words: int) -> int:
        """Evaluate the cell lane-wise on packed words.

        ``mask`` selects the active lanes (all-ones over the packed
        width); each bit position of the result is ``function`` applied
        to the corresponding bit of every input word.
        """
        if len(words) != self.n_inputs:
            raise ValueError(
                f"{self.name} expects {self.n_inputs} inputs, got {len(words)}")
        if self.word_function is not None:
            return self.word_function(mask, *words)
        from .bitsim import word_function_for

        return word_function_for(self)(mask, *words)

    @property
    def leakage_w(self) -> float:
        """Leakage in watts."""
        return self.leakage_nw * NANOWATT

    @property
    def toggle_energy_j(self) -> float:
        """Switching energy per output toggle in joules."""
        return self.toggle_energy_fj * FEMTOJOULE

    @property
    def delay_s(self) -> float:
        """Propagation delay in seconds."""
        return self.delay_ps * PICOSECOND


def _mux2(d0: int, d1: int, select: int) -> int:
    return d1 if select else d0


def _mux2_words(mask: int, d0: int, d1: int, select: int) -> int:
    return (d1 & select) | (d0 & (select ^ mask))


#: The library: saed32-class generic cells.  Each scalar lambda is paired
#: with its lane-wise word form (mask-first; complement = ``x ^ mask``).
LIBRARY: Dict[str, Cell] = {
    cell.name: cell
    for cell in (
        Cell("INV", 1, 0.51, 9.0, 0.45, 11.0, lambda a: a ^ 1,
             lambda m, a: a ^ m),
        Cell("BUF", 1, 0.76, 12.0, 0.60, 18.0, lambda a: a,
             lambda m, a: a),
        Cell("NAND2", 2, 0.76, 12.0, 0.60, 14.0, lambda a, b: (a & b) ^ 1,
             lambda m, a, b: (a & b) ^ m),
        Cell("NOR2", 2, 0.76, 12.0, 0.60, 16.0, lambda a, b: (a | b) ^ 1,
             lambda m, a, b: (a | b) ^ m),
        Cell("AND2", 2, 1.02, 16.0, 0.80, 20.0, lambda a, b: a & b,
             lambda m, a, b: a & b),
        Cell("OR2", 2, 1.02, 16.0, 0.80, 20.0, lambda a, b: a | b,
             lambda m, a, b: a | b),
        Cell("XOR2", 2, 1.52, 26.0, 1.40, 24.0, lambda a, b: a ^ b,
             lambda m, a, b: a ^ b),
        Cell("XNOR2", 2, 1.52, 26.0, 1.40, 24.0, lambda a, b: (a ^ b) ^ 1,
             lambda m, a, b: (a ^ b) ^ m),
        Cell("MUX2", 3, 1.78, 28.0, 1.30, 22.0, _mux2, _mux2_words),
        Cell("AND3", 3, 1.27, 20.0, 1.00, 26.0, lambda a, b, c: a & b & c,
             lambda m, a, b, c: a & b & c),
        Cell("OR3", 3, 1.27, 20.0, 1.00, 26.0, lambda a, b, c: a | b | c,
             lambda m, a, b, c: a | b | c),
        Cell("NOR3", 3, 1.02, 16.0, 0.80, 22.0,
             lambda a, b, c: (a | b | c) ^ 1,
             lambda m, a, b, c: (a | b | c) ^ m),
        Cell("AOI21", 3, 1.02, 16.0, 0.85, 18.0,
             lambda a, b, c: ((a & b) | c) ^ 1,
             lambda m, a, b, c: ((a & b) | c) ^ m),
        Cell("OAI21", 3, 1.02, 16.0, 0.85, 18.0,
             lambda a, b, c: ((a | b) & c) ^ 1,
             lambda m, a, b, c: ((a | b) & c) ^ m),
    )
}

#: Sequential cell used for pipeline-register accounting (not simulated in
#: the combinational netlist evaluator).
DFF = Cell("DFF", 1, 4.57, 75.0, 2.60, 90.0, lambda d: d, lambda m, d: d)

#: Effective flip-flop timing overhead (clk-to-Q + setup) in picoseconds,
#: the floor on any pipelined cycle time.
REGISTER_OVERHEAD_PS = 95.0


def get_cell(name: str) -> Cell:
    """Look up a combinational cell by name.

    >>> get_cell("NAND2").n_inputs
    2
    """
    try:
        return LIBRARY[name]
    except KeyError:
        known = ", ".join(sorted(LIBRARY))
        raise KeyError(f"unknown cell {name!r}; known cells: {known}") from None
