"""Level-based pipeline cut analysis for the encoder netlists.

The synthesis estimator (:mod:`repro.hw.synthesis`) models retiming with
an efficiency factor.  This module computes the underlying quantity from
first principles: given a combinational netlist and a stage budget, place
the pipeline cuts between logic levels so the slowest stage is as fast as
possible, and count how many nets cross each cut (the registers retiming
actually has to insert).

Used by the synthesis tests to sanity-check the efficiency factors, and
usable on its own for "how many stages would this design need at
frequency f?" questions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .cells import REGISTER_OVERHEAD_PS
from .netlist import Netlist


@dataclass(frozen=True)
class PipelinePlan:
    """Result of a stage-balancing analysis."""

    stages: int
    #: Arrival time (ps) at the end of each stage's slowest path.
    stage_delays_ps: Tuple[float, ...]
    #: Nets crossing each cut (registers per cut); len = stages - 1.
    cut_widths: Tuple[int, ...]

    @property
    def cycle_time_ps(self) -> float:
        """Achievable cycle time: slowest stage plus register overhead."""
        return max(self.stage_delays_ps) + REGISTER_OVERHEAD_PS

    @property
    def max_frequency_hz(self) -> float:
        """Maximum clock frequency of the pipelined design."""
        return 1e12 / self.cycle_time_ps

    @property
    def total_register_bits(self) -> int:
        """Registers inserted by all cuts together."""
        return sum(self.cut_widths)


def _gate_arrival_times(netlist: Netlist) -> List[float]:
    """Arrival time (ps) of every gate output, topological sweep."""
    arrival = [0.0] * netlist._n_nets
    for gate in netlist.gates:
        start = max((arrival[net] for net in gate.inputs), default=0.0)
        arrival[gate.output] = start + gate.cell.delay_ps
    return arrival


def plan_pipeline(netlist: Netlist, stages: int) -> PipelinePlan:
    """Balance the netlist into *stages* time slices.

    Cuts are placed at equal arrival-time boundaries (the best a
    retimer can do without restructuring logic): stage *k* contains all
    gates whose output arrival time falls in slice *k* of the critical
    path.  Cut width counts the nets computed in stages <= k that feed
    gates in stages > k, plus primary inputs consumed late.

    >>> from .encoders import build_dc_encoder
    >>> plan = plan_pipeline(build_dc_encoder(8), stages=2)
    >>> plan.stages
    2
    """
    if stages < 1:
        raise ValueError(f"stages must be >= 1, got {stages}")
    arrival = _gate_arrival_times(netlist)
    critical = max((arrival[gate.output] for gate in netlist.gates),
                   default=0.0)
    if critical == 0.0 or stages == 1:
        return PipelinePlan(stages=1, stage_delays_ps=(critical,),
                            cut_widths=())

    slice_length = critical / stages

    def stage_of(net: int) -> int:
        index = int(arrival[net] / slice_length)
        return min(index, stages - 1)

    # Stage delay: the worst arrival time inside each slice, measured from
    # the slice boundary (where the retimer would place the registers).
    stage_end: List[float] = [0.0] * stages
    gate_stage: Dict[int, int] = {}
    for gate in netlist.gates:
        stage = stage_of(gate.output)
        gate_stage[gate.output] = stage
        stage_end[stage] = max(stage_end[stage],
                               arrival[gate.output] - stage * slice_length)

    # Cut widths: nets produced at/before cut k and consumed after it.
    crossing: List[set] = [set() for _ in range(stages - 1)]
    for gate in netlist.gates:
        consumer_stage = gate_stage[gate.output]
        for net in gate.inputs:
            producer_stage = gate_stage.get(net, 0)  # inputs/consts: stage 0
            for cut in range(producer_stage, consumer_stage):
                crossing[cut].add(net)
    output_nets = {net for nets in netlist.outputs.values() for net in nets}
    for net in output_nets:
        producer_stage = gate_stage.get(net, 0)
        for cut in range(producer_stage, stages - 1):
            crossing[cut].add(net)

    return PipelinePlan(
        stages=stages,
        stage_delays_ps=tuple(stage_end),
        cut_widths=tuple(len(nets) for nets in crossing),
    )


def stages_for_frequency(netlist: Netlist, frequency_hz: float,
                         max_stages: int = 32) -> int:
    """Minimum stage count whose balanced pipeline meets *frequency_hz*.

    Returns ``max_stages + 1`` (sentinel) when even the deepest allowed
    pipeline cannot reach the target (register overhead floor).
    """
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    target_ps = 1e12 / frequency_hz
    for stages in range(1, max_stages + 1):
        plan = plan_pipeline(netlist, stages)
        if plan.cycle_time_ps <= target_ps:
            return stages
    return max_stages + 1
