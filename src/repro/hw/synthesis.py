"""Synthesis-style area/power/timing estimation (Table I substitute).

The paper synthesises VHDL with Synopsys DC Ultra on 32 nm generic
libraries.  Offline we estimate the same quantities from the structural
netlists of :mod:`repro.hw.encoders`:

* **area** — sum of cell areas plus pipeline-register area;
* **static power** — sum of cell leakage, derated for timing pressure
  (a synthesis tool that struggles to close timing swaps in low-Vt /
  upsized cells, which is how the paper's 3-bit design ends up with a
  leakage density ~5x the fixed design's);
* **dynamic power** — zero-delay switching energy from random-burst
  activity simulation, a glitch factor for the ripple-carry datapath, and
  register/clock energy, all scaled by the achieved burst rate;
* **timing** — the combinational critical path, split across the design's
  pipeline stages with a retiming-efficiency factor (ideal retiming would
  divide the path exactly by the stage count; real tools fall short,
  dramatically so for the multiplier-heavy configurable design).

Absolute numbers are calibrated to the same order of magnitude as Table I
and the measured-vs-paper comparison lives in EXPERIMENTS.md; the
*orderings and ratios* (which designs meet 12 Gbps, the relative area and
energy-per-burst factors) emerge from the netlist structure itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional

from .activity import DEFAULT_ACTIVITY_BURSTS, measure_activity
from .cells import DFF, REGISTER_OVERHEAD_PS
from .encoders import (
    build_ac_encoder,
    build_dc_encoder,
    build_opt_encoder,
)
from .netlist import Netlist

#: Glitch multiplier on zero-delay switching energy (ripple datapaths).
GLITCH_FACTOR = 1.5

#: Fraction of register bits toggling per cycle plus clock-pin activity.
REGISTER_ACTIVITY = 0.7

#: The paper's throughput target: 12 Gbps per pin = 1.5 G bursts/s.
TARGET_BURST_RATE_HZ = 1.5e9


@dataclass(frozen=True)
class DesignSpec:
    """Synthesis-relevant attributes of one encoder design."""

    name: str
    #: Builder producing the combinational netlist.
    build: "staticmethod"
    #: Output pipeline stages available for retiming (paper: 8 for OPT).
    pipeline_stages: int
    #: Width of the state that must be registered per pipeline cut.
    pipeline_cut_bits: int
    #: Fraction of the ideal path/stages split the tool achieves.
    retiming_efficiency: float
    #: Coefficient inputs driven during activity simulation (q-designs).
    alpha: Optional[int] = None
    beta: Optional[int] = None


@dataclass(frozen=True)
class SynthesisResult:
    """Table I row: one design at one operating point."""

    design: str
    area_um2: float
    static_power_w: float
    dynamic_power_w: float
    burst_rate_hz: float
    max_burst_rate_hz: float
    meets_target: bool
    n_gates: int
    n_register_bits: int
    critical_path_ps: float

    @property
    def total_power_w(self) -> float:
        """Static plus dynamic power in watts."""
        return self.static_power_w + self.dynamic_power_w

    @property
    def energy_per_burst_j(self) -> float:
        """Encoding energy per burst in joules (total power / burst rate)."""
        return self.total_power_w / self.burst_rate_hz

    @property
    def data_rate_gbps(self) -> float:
        """Equivalent per-pin data rate (8 beats per burst)."""
        return self.burst_rate_hz * 8 / 1e9


def _design_specs() -> Dict[str, DesignSpec]:
    return {
        "dbi-dc": DesignSpec(
            name="dbi-dc",
            build=lambda: build_dc_encoder(8),
            pipeline_stages=1,
            pipeline_cut_bits=8,
            retiming_efficiency=0.95,
        ),
        "dbi-ac": DesignSpec(
            name="dbi-ac",
            build=lambda: build_ac_encoder(8),
            pipeline_stages=8,
            pipeline_cut_bits=9,
            retiming_efficiency=0.90,
        ),
        "dbi-opt-fixed": DesignSpec(
            name="dbi-opt-fixed",
            build=lambda: build_opt_encoder(8, coefficient_bits=None),
            pipeline_stages=8,
            pipeline_cut_bits=24,
            retiming_efficiency=0.88,
        ),
        "dbi-opt-q3": DesignSpec(
            name="dbi-opt-q3",
            build=lambda: build_opt_encoder(8, coefficient_bits=3),
            pipeline_stages=8,
            pipeline_cut_bits=30,
            retiming_efficiency=0.30,
            alpha=1,
            beta=1,
        ),
    }


def _leakage_derate(timing_pressure: float) -> float:
    """Leakage multiplier from timing pressure.

    ``timing_pressure`` is target-period utilisation: achieved critical
    path per stage divided by the target period.  Below 0.6 the tool can
    use high-Vt cells everywhere (x1); approaching and passing 1.0 it
    swaps to leaky low-Vt and upsized drive strengths.  The quadratic is
    calibrated so a comfortably-meeting design keeps its library leakage
    while a failing design's leakage density grows by several x, matching
    the fixed-vs-3-bit contrast in Table I.
    """
    if timing_pressure <= 0.6:
        return 1.0
    return min(30.0, 1.0 + 12.0 * (timing_pressure - 0.6) ** 2)


def synthesize(spec: DesignSpec,
               target_burst_rate_hz: float = TARGET_BURST_RATE_HZ,
               activity_bursts: Optional[int] = None,
               population=None,
               backend: Optional[str] = None) -> SynthesisResult:
    """Estimate area/power/timing for one design.

    The achieved burst rate is the target when timing closes, otherwise
    the design's maximum rate (the paper's 3-bit design runs at 0.5 GHz
    instead of 1.5 GHz for exactly this reason).

    Dynamic power comes from gate-level activity simulation over
    ``activity_bursts`` random bursts (default
    :data:`~repro.hw.activity.DEFAULT_ACTIVITY_BURSTS` = 100k — the
    bit-parallel engine makes the full-population estimate the cheap
    path) or over an explicit ``population``
    (:class:`~repro.workloads.population.BurstPopulation`), e.g. a trace
    or patterned workload.  ``backend`` selects the simulation engine.
    """
    netlist = spec.build()
    critical_path_ps = netlist.critical_path_ps()

    stages = max(1, spec.pipeline_stages)
    stage_path_ps = critical_path_ps / (stages * spec.retiming_efficiency)
    min_period_ps = stage_path_ps + REGISTER_OVERHEAD_PS
    max_rate_hz = 1e12 / min_period_ps
    meets_target = max_rate_hz >= target_burst_rate_hz
    burst_rate_hz = target_burst_rate_hz if meets_target else max_rate_hz

    n_register_bits = spec.pipeline_stages * spec.pipeline_cut_bits
    area_um2 = netlist.area_um2() + n_register_bits * DFF.area_um2

    target_period_ps = 1e12 / target_burst_rate_hz
    pressure = min_period_ps / target_period_ps
    static_power_w = (netlist.leakage_w()
                      + n_register_bits * DFF.leakage_w) * _leakage_derate(pressure)

    activity = measure_activity(netlist, n_bursts=activity_bursts,
                                alpha=spec.alpha, beta=spec.beta,
                                population=population, backend=backend)
    comb_energy_j = activity.switching_energy_per_cycle_j() * GLITCH_FACTOR
    register_energy_j = (n_register_bits * REGISTER_ACTIVITY
                         * DFF.toggle_energy_j)
    dynamic_power_w = (comb_energy_j + register_energy_j) * burst_rate_hz

    return SynthesisResult(
        design=spec.name,
        area_um2=area_um2,
        static_power_w=static_power_w,
        dynamic_power_w=dynamic_power_w,
        burst_rate_hz=burst_rate_hz,
        max_burst_rate_hz=max_rate_hz,
        meets_target=meets_target,
        n_gates=netlist.n_gates,
        n_register_bits=n_register_bits,
        critical_path_ps=critical_path_ps,
    )


@lru_cache(maxsize=2)
def table_one(activity_bursts: int = DEFAULT_ACTIVITY_BURSTS
              ) -> Dict[str, SynthesisResult]:
    """Synthesis results for all four Table I designs (cached).

    Dynamic power is measured over 100k random bursts by default — the
    same population scale as the software figures — via the bit-parallel
    activity engine.
    """
    return {
        name: synthesize(spec, activity_bursts=activity_bursts)
        for name, spec in _design_specs().items()
    }


def table_one_markdown(results: Optional[Dict[str, SynthesisResult]] = None) -> str:
    """Render Table I in the paper's column layout."""
    rows = results if results is not None else table_one()
    lines: List[str] = [
        "| Scheme | Area (um2) | Static (uW) | Dynamic (uW) "
        "| Burst Rate (GHz) | Total (uW) | Energy/Burst (pJ) |",
        "|---|---|---|---|---|---|---|",
    ]
    labels = {
        "dbi-dc": "DBI DC",
        "dbi-ac": "DBI AC",
        "dbi-opt-fixed": "DBI OPT (Fixed Coeff.)",
        "dbi-opt-q3": "DBI OPT (3-Bit Coeff.)",
    }
    for name, result in rows.items():
        lines.append(
            f"| {labels.get(name, name)} "
            f"| {result.area_um2:.0f} "
            f"| {result.static_power_w * 1e6:.0f} "
            f"| {result.dynamic_power_w * 1e6:.0f} "
            f"| {result.burst_rate_hz / 1e9:.2f} "
            f"| {result.total_power_w * 1e6:.0f} "
            f"| {result.energy_per_burst_j * 1e12:.2f} |"
        )
    return "\n".join(lines)


def encoder_energy_per_burst() -> Dict[str, float]:
    """Encoding energy per burst in joules, per scheme (for Fig. 8).

    RAW needs no encoder, so it appears with zero energy.
    """
    results = table_one()
    energies = {name: result.energy_per_burst_j
                for name, result in results.items()}
    energies["raw"] = 0.0
    return energies
