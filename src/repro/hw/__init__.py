"""Gate-level hardware models: cells, netlists, encoder RTL, synthesis.

Simulation backends
-------------------
The gate-level layer has two interchangeable simulation engines, selected
with the library-wide backend vocabulary (``backend="auto" | "reference"
| "vector"``, defaulting from ``REPRO_BACKEND`` /
:func:`repro.set_default_backend`):

* ``reference`` — the scalar interpreter in
  :meth:`~repro.hw.netlist.Netlist.simulate_activity` /
  :meth:`~repro.hw.netlist.Netlist.evaluate`: one vector at a time, one
  gate at a time, each cell evaluated through its boolean ``function``.
  This is the executable specification.
* ``vector`` — the bit-parallel compiled engine
  (:mod:`repro.hw.bitsim`): the netlist is lowered once into a
  straight-line program of bitwise word operations over the cells'
  ``word_function`` forms, W input vectors are packed per net into one
  machine word, and toggles are tallied with popcounts.  Unlike the
  encoding layer's vector backend, this works *without* NumPy (packing
  into arbitrary-width Python ints); NumPy switches the word type to
  ``uint64`` lane arrays for a further ~5-10x.

``auto`` therefore always resolves to the bit-parallel engine here.  The
two engines are bit-identical — same toggle tallies, same outputs — which
the differential suite in ``tests/hw/test_bitsim.py`` enforces over
hypothesis-generated netlists and every encoder design.
"""

from .activity import (
    DEFAULT_ACTIVITY_BURSTS,
    burst_to_vector,
    encode_with_netlist,
    iter_vectors,
    measure_activity,
    netlist_invert_flags,
    vectors_from_bursts,
)
from .bitsim import (
    CompiledNetlist,
    compile_netlist,
    resolve_sim_backend,
    word_function_from_truth_table,
)
from .cells import DFF, LIBRARY, Cell, get_cell
from .components import (
    add_many,
    carry_select_adder,
    full_adder,
    half_adder,
    less_than,
    min_select,
    multiply,
    mux_bus,
    popcount,
    ripple_adder,
    subtract_from_const,
    xor_bus,
    xor_with_bit,
)
from .encoders import (
    build_ac_encoder,
    build_dc_encoder,
    build_decoder,
    build_opt_encoder,
)
from .netlist import ActivityReport, Gate, Netlist
from .pipeline import PipelinePlan, plan_pipeline, stages_for_frequency
from .synthesis import (
    DesignSpec,
    SynthesisResult,
    TARGET_BURST_RATE_HZ,
    encoder_energy_per_burst,
    synthesize,
    table_one,
    table_one_markdown,
)

__all__ = [
    "ActivityReport",
    "Cell",
    "CompiledNetlist",
    "DEFAULT_ACTIVITY_BURSTS",
    "DFF",
    "DesignSpec",
    "Gate",
    "LIBRARY",
    "Netlist",
    "PipelinePlan",
    "SynthesisResult",
    "TARGET_BURST_RATE_HZ",
    "add_many",
    "compile_netlist",
    "build_ac_encoder",
    "build_dc_encoder",
    "build_decoder",
    "build_opt_encoder",
    "burst_to_vector",
    "carry_select_adder",
    "encode_with_netlist",
    "encoder_energy_per_burst",
    "full_adder",
    "get_cell",
    "half_adder",
    "iter_vectors",
    "less_than",
    "measure_activity",
    "min_select",
    "multiply",
    "mux_bus",
    "netlist_invert_flags",
    "plan_pipeline",
    "popcount",
    "resolve_sim_backend",
    "stages_for_frequency",
    "ripple_adder",
    "subtract_from_const",
    "synthesize",
    "word_function_from_truth_table",
    "table_one",
    "table_one_markdown",
    "vectors_from_bursts",
    "xor_bus",
    "xor_with_bit",
]
