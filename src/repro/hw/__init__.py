"""Gate-level hardware models: cells, netlists, encoder RTL, synthesis."""

from .activity import (
    burst_to_vector,
    encode_with_netlist,
    measure_activity,
    netlist_invert_flags,
    vectors_from_bursts,
)
from .cells import DFF, LIBRARY, Cell, get_cell
from .components import (
    add_many,
    carry_select_adder,
    full_adder,
    half_adder,
    less_than,
    min_select,
    multiply,
    mux_bus,
    popcount,
    ripple_adder,
    subtract_from_const,
    xor_bus,
    xor_with_bit,
)
from .encoders import (
    build_ac_encoder,
    build_dc_encoder,
    build_decoder,
    build_opt_encoder,
)
from .netlist import ActivityReport, Gate, Netlist
from .pipeline import PipelinePlan, plan_pipeline, stages_for_frequency
from .synthesis import (
    DesignSpec,
    SynthesisResult,
    TARGET_BURST_RATE_HZ,
    encoder_energy_per_burst,
    synthesize,
    table_one,
    table_one_markdown,
)

__all__ = [
    "ActivityReport",
    "Cell",
    "DFF",
    "DesignSpec",
    "Gate",
    "LIBRARY",
    "Netlist",
    "PipelinePlan",
    "SynthesisResult",
    "TARGET_BURST_RATE_HZ",
    "add_many",
    "build_ac_encoder",
    "build_dc_encoder",
    "build_decoder",
    "build_opt_encoder",
    "burst_to_vector",
    "carry_select_adder",
    "encode_with_netlist",
    "encoder_energy_per_burst",
    "full_adder",
    "get_cell",
    "half_adder",
    "less_than",
    "measure_activity",
    "min_select",
    "multiply",
    "mux_bus",
    "netlist_invert_flags",
    "plan_pipeline",
    "popcount",
    "stages_for_frequency",
    "ripple_adder",
    "subtract_from_const",
    "synthesize",
    "table_one",
    "table_one_markdown",
    "vectors_from_bursts",
    "xor_bus",
    "xor_with_bit",
]
