"""Bit-parallel compiled netlist simulation (the gate-level fast path).

:meth:`~repro.hw.netlist.Netlist.simulate_activity` interprets the gate
list one vector and one gate at a time — a faithful executable
specification, but every Table I activity run pays Python call overhead
per gate *per vector*.  This module is the hardware-layer analogue of
:mod:`repro.core.vectorized`: a :class:`CompiledNetlist` lowers a
:class:`~repro.hw.netlist.Netlist` once into a straight-line program of
bitwise word operations (the gate list is already levelized — gates can
only reference earlier nets — so the topological order *is* the program
order), packs W input vectors per net into one machine word, and
evaluates every gate once per W vectors using the cells' lane-wise
``word_function`` forms.  Toggle tallies come from popcounts of
``word ^ (word >> 1)`` transition words, so an activity run touches each
gate ``ceil(n_vectors / W)`` times instead of ``n_vectors`` times.

Two word implementations share the engine:

* ``"int"`` — arbitrary-precision Python integers, W = :data:`INT_CHUNK_VECTORS`
  bits per word.  Dependency-free; CPython's bignum kernels do the heavy
  lifting 64 bits per machine word.
* ``"uint64"`` — NumPy ``uint64`` lane arrays, W = 64 bits per array
  element over :data:`UINT64_CHUNK_VECTORS`-vector chunks.

Both are *bit-identical* to the scalar interpreter: every gate computes
the same boolean function on the same operand order, and toggle counts
are exact integers (``tests/hw/test_bitsim.py`` holds the differential
parity suite).

Backend selection mirrors the encoding layer: entry points accept
``backend="auto" | "reference" | "vector"`` (default from
:func:`repro.set_default_backend` / ``REPRO_BACKEND``).  Unlike the
encoding layer, ``auto`` resolves to the bit-parallel engine even
without NumPy, because the pure-Python ``int`` packing is itself a large
win over the scalar interpreter; NumPy only selects the faster word
implementation.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import chain, islice, product
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .cells import Cell
from .netlist import ActivityReport, CONST1, Netlist

try:  # pragma: no cover - trivially true/false per environment
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Vectors packed per big-int word in the pure-Python implementation.
#: 16384-bit integers keep per-gate bignum operations ~2 KiB — large
#: enough to amortise the per-gate Python dispatch, small enough that a
#: whole netlist's live words stay cache-resident.
INT_CHUNK_VECTORS = 16384

#: Vectors per chunk in the NumPy implementation (1024 uint64 lanes per
#: net — one contiguous 8 KiB array per net value).
UINT64_CHUNK_VECTORS = 65536

#: Recognised word implementations (``auto`` = ``uint64`` when NumPy is
#: importable, else ``int``).
WORD_IMPLS = ("auto", "int", "uint64")

_VALIDATION_MESSAGE = "activity simulation needs at least 2 vectors"


def resolve_sim_backend(backend: Optional[str] = None) -> str:
    """Resolve a gate-level simulation backend name.

    Accepts the library-wide backend vocabulary (``auto`` / ``reference``
    / ``vector``; ``None`` defers to :func:`repro.get_default_backend`,
    i.e. ``REPRO_BACKEND``).  Returns ``"reference"`` (scalar per-vector
    interpreter) or ``"vector"`` (bit-parallel compiled engine).  The
    gate-level ``vector`` backend does **not** require NumPy — without it
    the engine packs into Python ints instead of ``uint64`` arrays.
    """
    from ..core.vectorized import BACKENDS, get_default_backend

    name = get_default_backend() if backend is None else backend
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; choose from {BACKENDS}")
    return "vector" if name == "auto" else name


def resolve_word_impl(word_impl: str = "auto") -> str:
    """Resolve ``auto`` to the fastest available word implementation."""
    if word_impl not in WORD_IMPLS:
        raise ValueError(
            f"unknown word_impl {word_impl!r}; choose from {WORD_IMPLS}")
    if word_impl == "auto":
        return "int" if _np is None else "uint64"
    if word_impl == "uint64" and _np is None:
        raise RuntimeError("word_impl='uint64' requires NumPy")
    return word_impl


# -- cell word forms ----------------------------------------------------------

@lru_cache(maxsize=None)
def word_function_from_truth_table(cell: Cell) -> Callable[..., int]:
    """Synthesise a lane-wise word function from a cell's scalar function.

    Fallback for :class:`~repro.hw.cells.Cell` instances without a
    hand-written ``word_function``: enumerates the 2^n-row truth table and
    builds the sum-of-products over its minterms with bitwise AND/OR and
    ``x ^ mask`` complements — valid for Python ints and NumPy words
    alike.
    """
    if cell.n_inputs < 1:
        raise ValueError(f"cell {cell.name!r} has no inputs")
    minterms = [combo for combo in product((0, 1), repeat=cell.n_inputs)
                if cell.function(*combo)]

    def word_function(mask, *words):
        accumulator = None
        for combo in minterms:
            term = None
            for bit, word in zip(combo, words):
                literal = word if bit else word ^ mask
                term = literal if term is None else term & literal
            accumulator = term if accumulator is None else accumulator | term
        if accumulator is None:  # constant-0 cell
            return words[0] ^ words[0]
        return accumulator

    return word_function


def word_function_for(cell: Cell) -> Callable[..., int]:
    """The cell's lane-wise word form (hand-written or synthesised)."""
    if cell.word_function is not None:
        return cell.word_function
    return word_function_from_truth_table(cell)


# -- word kernels -------------------------------------------------------------

class _IntKernel:
    """Word operations over arbitrary-precision Python integers."""

    name = "int"
    default_chunk = INT_CHUNK_VECTORS

    @staticmethod
    def mask(n_vectors: int) -> int:
        return (1 << n_vectors) - 1

    @staticmethod
    def valid_mask(n_vectors: int) -> int:
        """A word with exactly the ``n_vectors`` valid lanes set.

        For this kernel identical to :meth:`mask`; kept as a separate
        method because callers that popcount whole words (the
        mask-parallel fault engine in
        :mod:`repro.extensions.reliability`) must not see garbage above
        the valid range, which :meth:`mask` does permit in the ``uint64``
        kernel.
        """
        return (1 << n_vectors) - 1

    @staticmethod
    def popcount(word: int) -> int:
        """Total set bits of one word (exact, all vector lanes)."""
        return _popcount_int(word)

    @staticmethod
    def zero_word(n_vectors: int) -> int:
        return 0

    def ones_word(self, n_vectors: int) -> int:
        return self.mask(n_vectors)

    def constant_word(self, bit: int, n_vectors: int) -> int:
        return self.mask(n_vectors) if bit else 0

    @staticmethod
    def pack_bus(values: Sequence[int], width: int,
                 n_vectors: int) -> List[int]:
        """Transpose per-vector bus values into one word per bit lane."""
        n_bytes = (n_vectors + 7) >> 3
        words: List[int] = []
        for position in range(width):
            column = bytearray(n_bytes)
            for index, value in enumerate(values):
                if (value >> position) & 1:
                    column[index >> 3] |= 1 << (index & 7)
            words.append(int.from_bytes(column, "little"))
        return words

    @staticmethod
    def transition_count(word: int, n_vectors: int) -> int:
        """Toggles between consecutive vectors within one word."""
        transitions = (word ^ (word >> 1)) & ((1 << (n_vectors - 1)) - 1)
        return _popcount_int(transitions)

    @staticmethod
    def first_bit(word: int) -> int:
        return word & 1

    @staticmethod
    def last_bit(word: int, n_vectors: int) -> int:
        return (word >> (n_vectors - 1)) & 1

    @staticmethod
    def unpack_bits(word: int, n_vectors: int) -> Sequence[int]:
        """Per-vector bit values of one net word."""
        raw = word.to_bytes((n_vectors + 7) >> 3, "little")
        return [(raw[i >> 3] >> (i & 7)) & 1 for i in range(n_vectors)]


if hasattr(int, "bit_count"):  # Python >= 3.10
    def _popcount_int(value: int) -> int:
        return value.bit_count()
else:  # pragma: no cover - exercised only on Python 3.9
    def _popcount_int(value: int) -> int:
        return bin(value).count("1")


class _Uint64Kernel:
    """Word operations over NumPy ``uint64`` lane arrays."""

    name = "uint64"
    default_chunk = UINT64_CHUNK_VECTORS

    def __init__(self) -> None:
        self._ones = _np.uint64(0xFFFFFFFFFFFFFFFF)
        self._u1 = _np.uint64(1)
        self._u63 = _np.uint64(63)
        if hasattr(_np, "bitwise_count"):
            self._popcount = lambda a: int(_np.bitwise_count(a).sum())
        else:  # pragma: no cover - NumPy < 2.0
            table = _np.array([bin(i).count("1") for i in range(256)],
                              dtype=_np.uint16)
            self._popcount = lambda a: int(table[a.view(_np.uint8)].sum())
        self._transition_masks: Dict[Tuple[int, int], object] = {}

    @staticmethod
    def _n_words(n_vectors: int) -> int:
        return (n_vectors + 63) >> 6

    def mask(self, n_vectors: int):
        # Lane garbage above ``n_vectors`` is harmless: gates operate
        # lane-wise and both toggle counting and unpacking mask to the
        # valid vector range.
        return self._ones

    def valid_mask(self, n_vectors: int):
        """A lane array with exactly the ``n_vectors`` valid bits set.

        Unlike :meth:`mask` (which tolerates garbage above the valid
        range), this is safe to popcount whole — the contract the
        mask-parallel fault engine relies on.
        """
        n_words = self._n_words(n_vectors)
        out = _np.zeros(n_words, dtype=_np.uint64)
        full, remainder = divmod(n_vectors, 64)
        out[:full] = self._ones
        if remainder:
            out[full] = _np.uint64((1 << remainder) - 1)
        return out

    def popcount(self, word) -> int:
        """Total set bits of one lane array (exact, all vector lanes)."""
        return self._popcount(word)

    def zero_word(self, n_vectors: int):
        return _np.zeros(self._n_words(n_vectors), dtype=_np.uint64)

    def ones_word(self, n_vectors: int):
        return _np.full(self._n_words(n_vectors), self._ones,
                        dtype=_np.uint64)

    def constant_word(self, bit: int, n_vectors: int):
        return self.ones_word(n_vectors) if bit else self.zero_word(n_vectors)

    def pack_bus(self, values, width: int, n_vectors: int) -> List[object]:
        array = _np.asarray(values, dtype=_np.int64)
        n_words = self._n_words(n_vectors)
        words: List[object] = []
        for position in range(width):
            plane = ((array >> position) & 1).astype(_np.uint8)
            packed = _np.packbits(plane, bitorder="little")
            padded = _np.zeros(n_words * 8, dtype=_np.uint8)
            padded[:packed.size] = packed
            words.append(padded.view("<u8").astype(_np.uint64, copy=False))
        return words

    def _transition_mask(self, n_vectors: int):
        n_words = self._n_words(n_vectors)
        key = (n_vectors, n_words)
        cached = self._transition_masks.get(key)
        if cached is None:
            bits = n_vectors - 1
            cached = _np.zeros(n_words, dtype=_np.uint64)
            full, remainder = divmod(bits, 64)
            cached[:full] = self._ones
            if remainder:
                cached[full] = _np.uint64((1 << remainder) - 1)
            self._transition_masks[key] = cached
        return cached

    def transition_count(self, word, n_vectors: int) -> int:
        shifted = word >> self._u1
        if word.size > 1:
            shifted[:-1] |= word[1:] << self._u63
        transitions = (word ^ shifted) & self._transition_mask(n_vectors)
        return self._popcount(transitions)

    @staticmethod
    def first_bit(word) -> int:
        return int(word[0]) & 1

    @staticmethod
    def last_bit(word, n_vectors: int) -> int:
        index = n_vectors - 1
        return (int(word[index >> 6]) >> (index & 63)) & 1

    @staticmethod
    def unpack_bits(word, n_vectors: int):
        raw = word.astype("<u8", copy=False).view(_np.uint8)
        return _np.unpackbits(raw, bitorder="little", count=n_vectors)


_KERNELS: Dict[str, object] = {"int": _IntKernel()}
if _np is not None:
    _KERNELS["uint64"] = _Uint64Kernel()


def get_kernel(word_impl: str = "auto"):
    """The word-operation kernel for a (resolved) word implementation."""
    return _KERNELS[resolve_word_impl(word_impl)]


_kernel = get_kernel


# -- the compiled program -----------------------------------------------------

def _compile_op(word_function: Callable[..., int], inputs: Tuple[int, ...],
                output: int):
    """Bind one gate into a closure over net indices (arity-specialised
    to keep the hot loop free of tuple unpacking)."""
    if len(inputs) == 1:
        in0, = inputs

        def op(values, mask):
            values[output] = word_function(mask, values[in0])
    elif len(inputs) == 2:
        in0, in1 = inputs

        def op(values, mask):
            values[output] = word_function(mask, values[in0], values[in1])
    elif len(inputs) == 3:
        in0, in1, in2 = inputs

        def op(values, mask):
            values[output] = word_function(mask, values[in0], values[in1],
                                           values[in2])
    else:
        def op(values, mask):
            values[output] = word_function(
                mask, *[values[net] for net in inputs])
    return op


def _chunked(iterable: Iterable, size: int) -> Iterator[List]:
    iterator = iter(iterable)
    while True:
        block = list(islice(iterator, size))
        if not block:
            return
        yield block


class CompiledNetlist:
    """A netlist lowered to a straight-line bitwise word program.

    Compilation walks the (already topological) gate list once, resolving
    each cell to its lane-wise word function and binding the net indices
    into per-gate closures.  The result is reusable across runs and
    word implementations; build via :func:`compile_netlist`, which caches
    on the netlist instance.
    """

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.n_nets = netlist._n_nets
        self.gate_output_nets: List[int] = [gate.output
                                            for gate in netlist.gates]
        self._ops = [
            _compile_op(word_function_for(gate.cell), gate.inputs,
                        gate.output)
            for gate in netlist.gates
        ]

    # -- execution ------------------------------------------------------------
    def new_values(self, kernel, n_vectors: int) -> List:
        """Fresh per-net word storage for one block (constants seeded)."""
        values = [kernel.zero_word(n_vectors)] * self.n_nets
        values[CONST1] = kernel.ones_word(n_vectors)
        return values

    def run(self, values: List, mask) -> None:
        """Execute the straight-line program in place."""
        for op in self._ops:
            op(values, mask)

    # -- block assembly from assignment mappings ------------------------------
    def _pack_assignments(self, kernel, block: List[Mapping[str, int]]):
        n_vectors = len(block)
        values = self.new_values(kernel, n_vectors)
        for name, nets in self.netlist.inputs.items():
            width = len(nets)
            column: List[int] = []
            for assignment in block:
                try:
                    value = assignment[name]
                except KeyError:
                    raise KeyError(f"missing input {name!r}") from None
                if value < 0 or value >> width:
                    raise ValueError(
                        f"input {name!r}={value} does not fit in "
                        f"{width} bits")
                column.append(value)
            for net, word in zip(nets, kernel.pack_bus(column, width,
                                                       n_vectors)):
                values[net] = word
        return values

    def _blocks_from_assignments(self, kernel,
                                 vectors: Iterable[Mapping[str, int]],
                                 chunk_vectors: int):
        for block in _chunked(vectors, chunk_vectors):
            yield len(block), self._pack_assignments(kernel, block)

    # -- activity -------------------------------------------------------------
    def activity_from_blocks(self, kernel, blocks) -> ActivityReport:
        """Tally per-gate toggles over pre-packed ``(n_vectors, values)``
        blocks (the low-level entry used by the packed-population fast
        path of :mod:`repro.hw.activity`)."""
        gate_nets = self.gate_output_nets
        toggles = [0] * len(gate_nets)
        tails: Optional[List[int]] = None
        total_vectors = 0
        for n_vectors, values in blocks:
            if n_vectors == 0:
                continue
            self.run(values, kernel.mask(n_vectors))
            new_tails = [0] * len(gate_nets)
            if tails is None:
                for index, net in enumerate(gate_nets):
                    word = values[net]
                    toggles[index] += kernel.transition_count(word, n_vectors)
                    new_tails[index] = kernel.last_bit(word, n_vectors)
            else:
                for index, net in enumerate(gate_nets):
                    word = values[net]
                    toggles[index] += (
                        kernel.transition_count(word, n_vectors)
                        + (kernel.first_bit(word) ^ tails[index]))
                    new_tails[index] = kernel.last_bit(word, n_vectors)
            tails = new_tails
            total_vectors += n_vectors
        if total_vectors < 2:
            raise ValueError(_VALIDATION_MESSAGE)
        return ActivityReport(netlist=self.netlist, gate_toggles=toggles,
                              n_cycles=total_vectors - 1)

    def simulate_activity(self, vectors: Iterable[Mapping[str, int]],
                          word_impl: str = "auto",
                          chunk_vectors: Optional[int] = None
                          ) -> ActivityReport:
        """Bit-parallel equivalent of :meth:`Netlist.simulate_activity`."""
        kernel = _kernel(word_impl)
        chunk = chunk_vectors or kernel.default_chunk
        if chunk < 1:
            raise ValueError(f"chunk_vectors must be >= 1, got {chunk}")
        iterator = iter(vectors)
        head = list(islice(iterator, 2))
        if len(head) < 2:
            raise ValueError(_VALIDATION_MESSAGE)
        stream = chain(head, iterator)
        return self.activity_from_blocks(
            kernel, self._blocks_from_assignments(kernel, stream, chunk))

    # -- functional evaluation ------------------------------------------------
    def evaluate_batch(self, assignments: Sequence[Mapping[str, int]],
                       word_impl: str = "auto",
                       chunk_vectors: Optional[int] = None
                       ) -> List[Dict[str, int]]:
        """Bit-parallel equivalent of per-vector :meth:`Netlist.evaluate`."""
        kernel = _kernel(word_impl)
        chunk = chunk_vectors or kernel.default_chunk
        if chunk < 1:
            raise ValueError(f"chunk_vectors must be >= 1, got {chunk}")
        results: List[Dict[str, int]] = []
        outputs = self.netlist.outputs
        for n_vectors, values in self._blocks_from_assignments(
                kernel, assignments, chunk):
            self.run(values, kernel.mask(n_vectors))
            block_results = [dict() for _ in range(n_vectors)]
            for name, nets in outputs.items():
                columns = [kernel.unpack_bits(values[net], n_vectors)
                           for net in nets]
                for vector_index in range(n_vectors):
                    word = 0
                    for position, column in enumerate(columns):
                        word |= int(column[vector_index]) << position
                    block_results[vector_index][name] = word
            results.extend(block_results)
        return results


def compile_netlist(netlist: Netlist) -> CompiledNetlist:
    """Compile (or fetch the cached compilation of) a netlist.

    The compiled program is cached on the netlist instance and
    invalidated when gates or nets are added afterwards.
    """
    key = (len(netlist.gates), netlist._n_nets)
    cached = getattr(netlist, "_bitsim_cache", None)
    if cached is not None and cached[0] == key:
        return cached[1]
    compiled = CompiledNetlist(netlist)
    netlist._bitsim_cache = (key, compiled)
    return compiled
