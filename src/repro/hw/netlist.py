"""Gate-level netlist container with simulation, timing and power queries.

A :class:`Netlist` is a combinational circuit built incrementally from the
cells of :mod:`repro.hw.cells`.  Gates must be created after their input
nets exist, so the gate list is always in topological order — evaluation,
longest-path timing and switching-activity analysis are all single linear
sweeps.  Batch evaluation and activity simulation dispatch to the
bit-parallel compiled engine of :mod:`repro.hw.bitsim` by default
(``backend="reference"`` selects the scalar per-vector interpreter, the
executable specification the compiled engine is differentially tested
against).

Sequential elements are *not* simulated here: the DBI encoders are
burst-parallel combinational blocks, and pipeline registers only affect the
area/power/timing accounting, which :mod:`repro.hw.synthesis` layers on
top.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from itertools import chain, islice
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .cells import Cell, get_cell

#: Reserved net indices for constant zero / one.
CONST0 = 0
CONST1 = 1


@dataclass(frozen=True)
class Gate:
    """One instantiated cell: ``output = cell.function(*inputs)``."""

    cell: Cell
    inputs: Tuple[int, ...]
    output: int


@dataclass
class Netlist:
    """A combinational gate-level circuit.

    >>> nl = Netlist("demo")
    >>> a, = nl.add_input("a", 1)
    >>> b, = nl.add_input("b", 1)
    >>> nl.mark_output("y", [nl.gate("XOR2", a, b)])
    >>> nl.evaluate({"a": 1, "b": 0})["y"]
    1
    """

    name: str
    gates: List[Gate] = field(default_factory=list)
    inputs: Dict[str, List[int]] = field(default_factory=dict)
    outputs: Dict[str, List[int]] = field(default_factory=dict)
    _n_nets: int = 2  # CONST0 and CONST1 pre-exist

    # -- construction -------------------------------------------------------
    def new_net(self) -> int:
        """Allocate a fresh net id."""
        net = self._n_nets
        self._n_nets += 1
        return net

    def add_input(self, name: str, width: int) -> List[int]:
        """Declare a primary input bus of *width* bits (LSB first)."""
        if name in self.inputs:
            raise ValueError(f"duplicate input {name!r}")
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        nets = [self.new_net() for _ in range(width)]
        self.inputs[name] = nets
        return nets

    def mark_output(self, name: str, nets: Sequence[int]) -> None:
        """Declare a primary output bus (LSB first)."""
        if name in self.outputs:
            raise ValueError(f"duplicate output {name!r}")
        for net in nets:
            self._check_net(net)
        self.outputs[name] = list(nets)

    def gate(self, cell_name: str, *input_nets: int) -> int:
        """Instantiate a cell; returns its output net."""
        cell = get_cell(cell_name)
        for net in input_nets:
            self._check_net(net)
        if len(input_nets) != cell.n_inputs:
            raise ValueError(
                f"{cell_name} needs {cell.n_inputs} inputs, got {len(input_nets)}")
        output = self.new_net()
        self.gates.append(Gate(cell=cell, inputs=tuple(input_nets), output=output))
        return output

    def constant(self, value: int, width: int) -> List[int]:
        """Nets carrying the bits of *value* (LSB first)."""
        if value < 0 or value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        return [CONST1 if (value >> i) & 1 else CONST0 for i in range(width)]

    def _check_net(self, net: int) -> None:
        if not 0 <= net < self._n_nets:
            raise ValueError(f"net {net} does not exist (have {self._n_nets})")

    # -- static queries -------------------------------------------------------
    @property
    def n_gates(self) -> int:
        """Number of instantiated combinational cells."""
        return len(self.gates)

    def cell_counts(self) -> Dict[str, int]:
        """Histogram of cell names."""
        return dict(Counter(gate.cell.name for gate in self.gates))

    def area_um2(self) -> float:
        """Total combinational cell area."""
        return sum(gate.cell.area_um2 for gate in self.gates)

    def leakage_w(self) -> float:
        """Total combinational leakage in watts."""
        return sum(gate.cell.leakage_w for gate in self.gates)

    def _longest_path(self, gate_weight: Callable[[Gate], float], zero):
        """Longest-path arrival over the (topological) gate list, taken
        at the primary outputs — or over all nets when none are marked."""
        arrival = [zero] * self._n_nets
        for gate in self.gates:
            start = max((arrival[net] for net in gate.inputs), default=zero)
            arrival[gate.output] = start + gate_weight(gate)
        output_nets = [net for nets in self.outputs.values() for net in nets]
        if not output_nets:
            return max(arrival, default=zero)
        return max(arrival[net] for net in output_nets)

    def critical_path_ps(self) -> float:
        """Longest input-to-output path in picoseconds (topological sweep)."""
        return self._longest_path(lambda gate: gate.cell.delay_ps, 0.0)

    def logic_depth(self) -> int:
        """Longest path measured in gate levels."""
        return self._longest_path(lambda gate: 1, 0)

    # -- simulation -----------------------------------------------------------
    def _assign(self, assignment: Mapping[str, int]) -> List[int]:
        values = [0] * self._n_nets
        values[CONST1] = 1
        for name, nets in self.inputs.items():
            try:
                value = assignment[name]
            except KeyError:
                raise KeyError(f"missing input {name!r}") from None
            if value < 0 or value >> len(nets):
                raise ValueError(
                    f"input {name!r}={value} does not fit in {len(nets)} bits")
            for position, net in enumerate(nets):
                values[net] = (value >> position) & 1
        return values

    def _propagate(self, values: List[int]) -> None:
        for gate in self.gates:
            values[gate.output] = gate.cell.function(
                *(values[net] for net in gate.inputs))

    def evaluate(self, assignment: Mapping[str, int]) -> Dict[str, int]:
        """Evaluate all outputs for one input assignment.

        Input/outputs are integers packed LSB-first over their bus nets.
        """
        values = self._assign(assignment)
        self._propagate(values)
        result: Dict[str, int] = {}
        for name, nets in self.outputs.items():
            word = 0
            for position, net in enumerate(nets):
                word |= values[net] << position
            result[name] = word
        return result

    def evaluate_batch(self, assignments: Sequence[Mapping[str, int]],
                       backend: Optional[str] = None) -> List[Dict[str, int]]:
        """Evaluate all outputs for a sequence of input assignments.

        ``backend`` follows the library-wide vocabulary (``"auto"`` /
        ``"reference"`` / ``"vector"``, default from ``REPRO_BACKEND``):
        ``reference`` loops :meth:`evaluate` per vector, ``vector`` runs
        the bit-parallel compiled engine of :mod:`repro.hw.bitsim` —
        bit-identical, just evaluated W vectors per gate visit.
        """
        from .bitsim import compile_netlist, resolve_sim_backend

        if resolve_sim_backend(backend) == "reference":
            return [self.evaluate(assignment) for assignment in assignments]
        return compile_netlist(self).evaluate_batch(assignments)

    def simulate_activity(self, vectors: Iterable[Mapping[str, int]],
                          backend: Optional[str] = None) -> "ActivityReport":
        """Run a vector sequence and tally output toggles per gate.

        Toggle counting is zero-delay (functional): a gate output that
        changes between consecutive vectors counts one toggle.  Glitching
        is approximated later by a multiplicative factor in the synthesis
        model rather than simulated.

        ``backend`` selects the scalar interpreter (``"reference"``) or
        the bit-parallel compiled engine (``"vector"``, the ``"auto"``
        default) — see :mod:`repro.hw.bitsim`; both produce identical
        toggle tallies.
        """
        from .bitsim import compile_netlist, resolve_sim_backend

        if resolve_sim_backend(backend) != "reference":
            return compile_netlist(self).simulate_activity(vectors)

        # Validate incrementally: pull the first two vectors before any
        # propagation so a too-short input fails fast, and a generator
        # input is never materialised wholesale.
        iterator = iter(vectors)
        head = list(islice(iterator, 2))
        if len(head) < 2:
            raise ValueError("activity simulation needs at least 2 vectors")
        toggles = [0] * len(self.gates)
        previous: Optional[List[int]] = None
        n_vectors = 0
        for assignment in chain(head, iterator):
            values = self._assign(assignment)
            self._propagate(values)
            if previous is not None:
                for index, gate in enumerate(self.gates):
                    if values[gate.output] != previous[gate.output]:
                        toggles[index] += 1
            previous = values
            n_vectors += 1
        return ActivityReport(netlist=self, gate_toggles=toggles,
                              n_cycles=n_vectors - 1)


@dataclass
class ActivityReport:
    """Switching-activity tallies from :meth:`Netlist.simulate_activity`."""

    netlist: Netlist
    gate_toggles: List[int]
    n_cycles: int

    def switching_energy_per_cycle_j(self) -> float:
        """Mean switching energy per evaluation cycle, joules."""
        total = 0.0
        for gate, toggles in zip(self.netlist.gates, self.gate_toggles):
            total += toggles * gate.cell.toggle_energy_j
        return total / self.n_cycles

    def mean_toggle_rate(self) -> float:
        """Mean output toggles per gate per cycle."""
        if not self.netlist.gates:
            return 0.0
        return sum(self.gate_toggles) / (len(self.netlist.gates) * self.n_cycles)
