"""Switching-activity stimulus for the encoder netlists.

Builds input-vector sequences from burst workloads (matching the netlist
I/O contract of :mod:`repro.hw.encoders`) and runs them through
:meth:`~repro.hw.netlist.Netlist.simulate_activity` to obtain realistic
per-design dynamic energy — the basis of Table I's dynamic-power column.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.bitops import ALL_ONES_WORD
from ..core.burst import Burst
from ..workloads.population import RandomPopulation
from .netlist import ActivityReport, Netlist


def burst_to_vector(burst: Burst, prev_word: int = ALL_ONES_WORD,
                    alpha: Optional[int] = None,
                    beta: Optional[int] = None) -> Dict[str, int]:
    """Map one burst onto the encoder netlist input contract."""
    vector: Dict[str, int] = {
        f"byte{i}": byte for i, byte in enumerate(burst)
    }
    vector["prev_word"] = prev_word
    if alpha is not None:
        vector["alpha"] = alpha
    if beta is not None:
        vector["beta"] = beta
    return vector


def vectors_from_bursts(bursts: Iterable[Burst],
                        prev_word: int = ALL_ONES_WORD,
                        alpha: Optional[int] = None,
                        beta: Optional[int] = None) -> List[Dict[str, int]]:
    """Vector list for a whole burst population."""
    return [burst_to_vector(burst, prev_word, alpha, beta) for burst in bursts]


def measure_activity(netlist: Netlist, n_bursts: int = 200,
                     burst_length: int = 8, seed: int = 0x0DB1,
                     alpha: Optional[int] = None,
                     beta: Optional[int] = None) -> ActivityReport:
    """Random-burst activity of an encoder netlist.

    Uses the same seeded uniform-random workload as the paper's encoding
    quality evaluation, so the dynamic-power estimate reflects nominal
    traffic rather than a directed corner.
    """
    if n_bursts < 2:
        raise ValueError("activity measurement needs at least 2 bursts")
    # RandomPopulation matches random_bursts byte-for-byte with NumPy
    # installed and falls back to a deterministic pure-Python stream
    # without it, keeping Table I estimates available in any environment.
    population = RandomPopulation(count=n_bursts, burst_length=burst_length,
                                  seed=seed).bursts()
    vectors = vectors_from_bursts(population, alpha=alpha, beta=beta)
    return netlist.simulate_activity(vectors)


def encode_with_netlist(netlist: Netlist, burst: Burst,
                        prev_word: int = ALL_ONES_WORD,
                        alpha: Optional[int] = None,
                        beta: Optional[int] = None) -> Mapping[str, int]:
    """Evaluate an encoder netlist on one burst (functional use).

    Returns the raw output map (``flags`` plus ``word0..``); see
    :func:`netlist_invert_flags` for the decoded flag tuple.
    """
    return netlist.evaluate(burst_to_vector(burst, prev_word, alpha, beta))


def netlist_invert_flags(netlist: Netlist, burst: Burst,
                         prev_word: int = ALL_ONES_WORD,
                         alpha: Optional[int] = None,
                         beta: Optional[int] = None) -> Sequence[bool]:
    """The invert-flag tuple an encoder netlist chooses for *burst*."""
    outputs = encode_with_netlist(netlist, burst, prev_word, alpha, beta)
    flags = outputs["flags"]
    return tuple(bool((flags >> i) & 1) for i in range(len(burst)))
