"""Switching-activity stimulus for the encoder netlists.

Builds input-vector sequences from burst workloads (matching the netlist
I/O contract of :mod:`repro.hw.encoders`) and runs them through
:meth:`~repro.hw.netlist.Netlist.simulate_activity` to obtain realistic
per-design dynamic energy — the basis of Table I's dynamic-power column.

:func:`measure_activity` accepts any :class:`~repro.workloads.population.
BurstPopulation` (or an explicit burst sequence), so Table I numbers can
be driven by the trace and patterned workloads of :mod:`repro.workloads`
as well as the default seeded uniform-random population.  With the
bit-parallel backend and NumPy available, rectangular populations take a
packed fast path: the burst byte matrix is transposed straight into
bit-plane words without ever materialising per-vector assignment dicts.
"""

from __future__ import annotations

from itertools import chain
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from ..core.bitops import ALL_ONES_WORD
from ..core.burst import Burst
from ..workloads.population import BurstPopulation, RandomPopulation, as_population
from . import bitsim
from .netlist import ActivityReport, Netlist

#: Default population size for Table I activity measurement.  The paper's
#: software figures are simulated over 10k-burst populations; the
#: bit-parallel engine makes a 100k-burst gate-level run cheap enough to
#: be the default, replacing the token 200-burst workload the scalar
#: interpreter could afford.
DEFAULT_ACTIVITY_BURSTS = 100_000

#: Seed of the default random activity workload (matches the encoding
#: quality evaluation).
DEFAULT_ACTIVITY_SEED = 0x0DB1


def burst_to_vector(burst: Burst, prev_word: int = ALL_ONES_WORD,
                    alpha: Optional[int] = None,
                    beta: Optional[int] = None) -> Dict[str, int]:
    """Map one burst onto the encoder netlist input contract."""
    vector: Dict[str, int] = {
        f"byte{i}": byte for i, byte in enumerate(burst)
    }
    vector["prev_word"] = prev_word
    if alpha is not None:
        vector["alpha"] = alpha
    if beta is not None:
        vector["beta"] = beta
    return vector


def vectors_from_bursts(bursts: Iterable[Burst],
                        prev_word: int = ALL_ONES_WORD,
                        alpha: Optional[int] = None,
                        beta: Optional[int] = None) -> List[Dict[str, int]]:
    """Vector list for a whole burst population."""
    return [burst_to_vector(burst, prev_word, alpha, beta) for burst in bursts]


def iter_vectors(bursts: Iterable[Burst],
                 prev_word: int = ALL_ONES_WORD,
                 alpha: Optional[int] = None,
                 beta: Optional[int] = None) -> Iterator[Dict[str, int]]:
    """Lazy :func:`vectors_from_bursts` — one vector dict at a time, so
    large populations stream through the simulator without an up-front
    list of 100k dicts."""
    for burst in bursts:
        yield burst_to_vector(burst, prev_word, alpha, beta)


def _packed_activity(netlist: Netlist, packed_chunks,
                     burst_length: int, prev_word: int,
                     alpha: Optional[int],
                     beta: Optional[int]) -> ActivityReport:
    """Bit-parallel activity straight from packed ``uint8`` burst chunks.

    Bypasses assignment-dict construction entirely: each byte lane of the
    packed ``(batch, burst_length)`` chunks is transposed into bit-plane
    words, and the ``prev_word``/coefficient buses (constant across the
    workload) become constant words.
    """
    compiled = bitsim.compile_netlist(netlist)
    kernel = bitsim.get_kernel("uint64")
    inputs = netlist.inputs

    # Mirror the per-vector contract of burst_to_vector exactly: any
    # input bus the workload does not drive is a missing input, just as
    # it would be in the scalar assignment path.
    provided = {"prev_word": prev_word}
    if alpha is not None:
        provided["alpha"] = alpha
    if beta is not None:
        provided["beta"] = beta
    constant_buses: List[tuple] = []
    byte_buses: List[tuple] = []
    for name, nets in inputs.items():
        if name.startswith("byte") and name[4:].isdigit():
            byte_buses.append((int(name[4:]), nets))
            continue
        try:
            value = provided[name]
        except KeyError:
            raise KeyError(f"missing input {name!r}") from None
        if value < 0 or value >> len(nets):
            raise ValueError(
                f"input {name!r}={value} does not fit in {len(nets)} bits")
        constant_buses.append((value, nets))

    for index, _nets in byte_buses:
        if index >= burst_length:
            raise KeyError(f"missing input {f'byte{index}'!r}")

    def blocks():
        for chunk in packed_chunks:
            n_vectors = len(chunk)
            values = compiled.new_values(kernel, n_vectors)
            for value, nets in constant_buses:
                for position, net in enumerate(nets):
                    values[net] = kernel.constant_word(
                        (value >> position) & 1, n_vectors)
            for index, nets in byte_buses:
                column = chunk[:, index]
                width = len(nets)
                # Mirror the scalar overflow check: a byte lane narrower
                # than 8 bits must reject values that do not fit instead
                # of silently truncating.
                if width < 8 and n_vectors and int(column.max()) >> width:
                    value = int(column[
                        (column >> width).astype(bool).argmax()])
                    raise ValueError(
                        f"input 'byte{index}'={value} does not fit in "
                        f"{width} bits")
                for net, word in zip(nets, kernel.pack_bus(
                        column, width, n_vectors)):
                    values[net] = word
            yield n_vectors, values

    return compiled.activity_from_blocks(kernel, blocks())


def measure_activity(netlist: Netlist, n_bursts: Optional[int] = None,
                     burst_length: int = 8, seed: int = DEFAULT_ACTIVITY_SEED,
                     alpha: Optional[int] = None,
                     beta: Optional[int] = None,
                     population: Optional[BurstPopulation] = None,
                     bursts: Optional[Iterable[Burst]] = None,
                     backend: Optional[str] = None) -> ActivityReport:
    """Burst-workload activity of an encoder netlist.

    The workload is, in order of precedence: ``population`` (any
    :class:`~repro.workloads.population.BurstPopulation` — random, trace
    or patterned), ``bursts`` (an explicit burst sequence), or a seeded
    uniform-random population of ``n_bursts`` bursts (default
    :data:`DEFAULT_ACTIVITY_BURSTS` — the same nominal-traffic model as
    the paper's encoding quality evaluation).

    ``backend`` selects the simulation engine exactly as in
    :meth:`~repro.hw.netlist.Netlist.simulate_activity`; workload
    validation (at least two bursts) lives in the simulator, not here.
    """
    if population is not None and bursts is not None:
        raise ValueError("pass either population= or bursts=, not both")
    if bursts is not None:
        population = as_population(bursts)
    if population is None:
        # RandomPopulation matches random_bursts byte-for-byte with NumPy
        # installed and falls back to a deterministic pure-Python stream
        # without it, keeping Table I estimates available in any
        # environment.
        population = RandomPopulation(
            count=DEFAULT_ACTIVITY_BURSTS if n_bursts is None else n_bursts,
            burst_length=burst_length, seed=seed)
    elif n_bursts is not None and n_bursts != len(population):
        raise ValueError(
            f"n_bursts={n_bursts} conflicts with population of "
            f"{len(population)} bursts")

    resolved = bitsim.resolve_sim_backend(backend)
    if (resolved == "vector" and "uint64" in bitsim._KERNELS
            and population.burst_length is not None):
        kernel = bitsim.get_kernel("uint64")
        chunks = population.iter_packed(kernel.default_chunk)
        # Probe the first chunk only: a source that cannot yield packed
        # arrays (OpaquePopulation, exotic custom populations) falls back
        # to dict packing here; errors from the simulation itself
        # propagate normally.
        try:
            head = next(chunks)
        except StopIteration:
            chunks = iter(())
        except (NotImplementedError, RuntimeError):
            chunks = None
        else:
            chunks = chain([head], chunks)
        if chunks is not None:
            return _packed_activity(netlist, chunks,
                                    population.burst_length, ALL_ONES_WORD,
                                    alpha, beta)
    return netlist.simulate_activity(
        iter_vectors(population, alpha=alpha, beta=beta), backend=backend)


def encode_with_netlist(netlist: Netlist, burst: Burst,
                        prev_word: int = ALL_ONES_WORD,
                        alpha: Optional[int] = None,
                        beta: Optional[int] = None) -> Mapping[str, int]:
    """Evaluate an encoder netlist on one burst (functional use).

    Returns the raw output map (``flags`` plus ``word0..``); see
    :func:`netlist_invert_flags` for the decoded flag tuple.
    """
    return netlist.evaluate(burst_to_vector(burst, prev_word, alpha, beta))


def netlist_invert_flags(netlist: Netlist, burst: Burst,
                         prev_word: int = ALL_ONES_WORD,
                         alpha: Optional[int] = None,
                         beta: Optional[int] = None) -> Sequence[bool]:
    """The invert-flag tuple an encoder netlist chooses for *burst*."""
    outputs = encode_with_netlist(netlist, burst, prev_word, alpha, beta)
    flags = outputs["flags"]
    return tuple(bool((flags >> i) & 1) for i in range(len(burst)))
