"""Workload generators: random bursts, directed patterns, synthetic traces.

The population protocol (:mod:`repro.workloads.population`), the
directed patterns, and the streaming trace sources
(:mod:`repro.workloads.source`) are dependency-free; the random/trace
generators require NumPy and are skipped from the package namespace when
it is missing (the experiment engine and CLI then fall back to the
pure-Python population sources).
"""

from .patterns import (
    PATTERN_NAMES,
    PATTERNS,
    all_ones,
    all_zeros,
    checkerboard,
    get_pattern,
    pattern_population,
    pattern_suite,
    ramp,
    static_checkerboard,
    walking_ones,
    walking_zeros,
)
from .population import (
    DEFAULT_CHUNK_SIZE,
    BurstPopulation,
    ExplicitPopulation,
    OpaquePopulation,
    RandomPopulation,
    as_population,
)
from .source import (
    DEFAULT_TRACE_CHUNK_BYTES,
    BytesTraceSource,
    FileTraceSource,
    RegistryTraceSource,
    SyntheticTraceSource,
    TraceSource,
    as_trace_source,
    source_from_json,
)

__all__ = [
    "BurstPopulation",
    "BytesTraceSource",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_TRACE_CHUNK_BYTES",
    "ExplicitPopulation",
    "FileTraceSource",
    "OpaquePopulation",
    "PATTERN_NAMES",
    "PATTERNS",
    "RandomPopulation",
    "RegistryTraceSource",
    "SyntheticTraceSource",
    "TraceSource",
    "all_ones",
    "all_zeros",
    "as_population",
    "as_trace_source",
    "checkerboard",
    "get_pattern",
    "pattern_population",
    "pattern_suite",
    "ramp",
    "source_from_json",
    "static_checkerboard",
    "walking_ones",
    "walking_zeros",
]

# The guard is on NumPy itself (not a blanket except around the imports)
# so genuine import errors inside the generator modules still surface.
try:
    import numpy as _np  # noqa: F401 - availability probe only
except ImportError:  # pragma: no cover - NumPy missing
    _HAVE_NUMPY = False
else:
    _HAVE_NUMPY = True

if _HAVE_NUMPY:
    from .generator import Workload, make_workload, workload_names
    from .random_data import (
        DEFAULT_SEED,
        PAPER_SAMPLE_COUNT,
        biased_bursts,
        burst_stream,
        correlated_bursts,
        random_bursts,
        random_payload,
    )
    from .traces import (
        TRACES,
        available_traces,
        float_trace,
        gpu_frame_trace,
        image_trace,
        pointer_trace,
        text_trace,
        trace_bytes,
        zero_run_trace,
    )
    __all__ += [
        "DEFAULT_SEED",
        "PAPER_SAMPLE_COUNT",
        "TRACES",
        "Workload",
        "available_traces",
        "biased_bursts",
        "burst_stream",
        "correlated_bursts",
        "float_trace",
        "gpu_frame_trace",
        "image_trace",
        "make_workload",
        "pointer_trace",
        "random_bursts",
        "random_payload",
        "text_trace",
        "trace_bytes",
        "workload_names",
        "zero_run_trace",
    ]
