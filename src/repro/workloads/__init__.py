"""Workload generators: random bursts, directed patterns, synthetic traces."""

from .generator import Workload, make_workload, workload_names
from .patterns import (
    PATTERN_NAMES,
    all_ones,
    all_zeros,
    checkerboard,
    pattern_suite,
    ramp,
    static_checkerboard,
    walking_ones,
    walking_zeros,
)
from .random_data import (
    DEFAULT_SEED,
    PAPER_SAMPLE_COUNT,
    biased_bursts,
    burst_stream,
    correlated_bursts,
    random_bursts,
    random_payload,
)
from .traces import (
    float_trace,
    gpu_frame_trace,
    image_trace,
    pointer_trace,
    text_trace,
    zero_run_trace,
)

__all__ = [
    "DEFAULT_SEED",
    "PAPER_SAMPLE_COUNT",
    "PATTERN_NAMES",
    "Workload",
    "all_ones",
    "all_zeros",
    "biased_bursts",
    "burst_stream",
    "checkerboard",
    "correlated_bursts",
    "float_trace",
    "gpu_frame_trace",
    "image_trace",
    "make_workload",
    "pattern_suite",
    "pointer_trace",
    "ramp",
    "random_bursts",
    "random_payload",
    "static_checkerboard",
    "text_trace",
    "walking_ones",
    "walking_zeros",
    "workload_names",
    "zero_run_trace",
]
