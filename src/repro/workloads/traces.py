"""Synthetic application-like memory traces.

The paper motivates DBI with GPU memory interfaces (the LPGPU2 project);
its quantitative evaluation uses random bursts, but any deployment question
("how much does OPT save on *my* data?") needs realistic traffic.  Since no
proprietary GPU traces ship with this repository, we synthesise byte
streams whose first-order statistics match common traffic classes:

* :func:`text_trace` — ASCII text (high bit always 0 → DC-heavy),
* :func:`float_trace` — IEEE-754 float arrays of slowly varying signals
  (correlated high bytes, noisy mantissas),
* :func:`image_trace` — 8-bit image rows with spatial correlation,
* :func:`pointer_trace` — 64-bit pointers into a heap region (shared high
  bytes, strided low bytes),
* :func:`zero_run_trace` — zero-page / sparse buffer traffic.

Each returns a flat ``bytes`` payload to feed through
:class:`repro.phy.bus.MemoryBus`, :func:`repro.core.burst.chunk_bytes`,
or — via :func:`repro.ctrl.controller.transactions_from_bytes` — the
write-path controller's trace replay.  :data:`TRACES` registers every
class under a short name with a normalised ``(n_bytes, seed)``
signature, so CLI flags and replay specs can request ``"text"``,
``"gpu"``, ... uniformly (:func:`trace_bytes`).
The substitution rationale is recorded in DESIGN.md.
"""

from __future__ import annotations

import math
import string
from typing import Callable, Dict, List

import numpy as np

from .random_data import DEFAULT_SEED

#: Printable-character population reused by :func:`text_trace`.
_TEXT_ALPHABET = (string.ascii_lowercase * 6 + string.ascii_uppercase
                  + string.digits + " " * 12 + ".,;:\n")


def text_trace(n_bytes: int, seed: int = DEFAULT_SEED) -> bytes:
    """ASCII-text-like payload (every byte < 0x80, space-heavy).

    Text keeps DQ7 permanently low — a standing DC cost that DBI DC halves
    and DBI OPT trades optimally against the transition cost.
    """
    if n_bytes < 0:
        raise ValueError("n_bytes must be >= 0")
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, len(_TEXT_ALPHABET), size=n_bytes)
    return bytes(ord(_TEXT_ALPHABET[i]) for i in indices)


def float_trace(n_values: int, seed: int = DEFAULT_SEED) -> bytes:
    """Little-endian float32 samples of a noisy sine (sensor/HPC-like).

    Exponent bytes barely change (AC-cheap), mantissa bytes are nearly
    random (AC-expensive) — a bimodal lane profile typical of numeric
    kernels.
    """
    if n_values < 0:
        raise ValueError("n_values must be >= 0")
    rng = np.random.default_rng(seed)
    t = np.arange(n_values, dtype=np.float64)
    signal = np.sin(2 * math.pi * t / 64.0) + 0.01 * rng.standard_normal(n_values)
    return signal.astype("<f4").tobytes()


def image_trace(width: int = 256, height: int = 64,
                seed: int = DEFAULT_SEED) -> bytes:
    """8-bit grayscale image with smooth spatial gradients plus noise.

    Neighbouring pixels differ by a few LSBs, so transitions concentrate in
    the low lanes — a good showcase for the joint DC/AC optimisation.
    """
    if width < 1 or height < 1:
        raise ValueError("width and height must be >= 1")
    rng = np.random.default_rng(seed)
    x = np.arange(width, dtype=np.float64)
    y = np.arange(height, dtype=np.float64)[:, None]
    base = 128 + 96 * np.sin(2 * math.pi * x / width) * np.cos(2 * math.pi * y / height)
    noisy = base + 8 * rng.standard_normal((height, width))
    return np.clip(noisy, 0, 255).astype(np.uint8).tobytes()


def pointer_trace(n_pointers: int, heap_base: int = 0x7F5A_3000_0000,
                  stride: int = 64, seed: int = DEFAULT_SEED) -> bytes:
    """Little-endian 64-bit pointers into one heap region.

    The top bytes are constant (zero transitions, mixed zeros), the low
    bytes stride — the classic pointer-chasing lane profile.
    """
    if n_pointers < 0:
        raise ValueError("n_pointers must be >= 0")
    if heap_base < 0 or stride < 1:
        raise ValueError("heap_base must be >= 0 and stride >= 1")
    rng = np.random.default_rng(seed)
    offsets = rng.integers(0, 4096, size=n_pointers, dtype=np.uint64)
    addresses = (heap_base + stride * offsets).astype("<u8")
    return addresses.tobytes()


def zero_run_trace(n_bytes: int, zero_fraction: float = 0.6,
                   run_length: int = 32, seed: int = DEFAULT_SEED) -> bytes:
    """Sparse-buffer traffic: runs of 0x00 interleaved with random data.

    Zero pages and zero-initialised buffers are the DC worst case RAW can
    produce; DBI DC/OPT collapse each all-zero byte to a single DBI zero.
    """
    if not 0.0 <= zero_fraction <= 1.0:
        raise ValueError("zero_fraction must be in [0, 1]")
    if n_bytes < 0 or run_length < 1:
        raise ValueError("n_bytes must be >= 0 and run_length >= 1")
    rng = np.random.default_rng(seed)
    out: List[int] = []
    while len(out) < n_bytes:
        if rng.random() < zero_fraction:
            out.extend([0x00] * run_length)
        else:
            out.extend(rng.integers(0, 256, size=run_length, dtype=np.uint8).tolist())
    return bytes(out[:n_bytes])


def gpu_frame_trace(n_bytes: int, seed: int = DEFAULT_SEED) -> bytes:
    """A GPU-framebuffer-like mixture (the paper's motivating traffic).

    Interleaves RGBA-ish image data, float vertex data, pointer tables and
    zero-filled regions in proportions loosely modelled on graphics
    workloads: 50 % texture/framebuffer, 25 % float geometry, 10 %
    pointers/descriptors, 15 % cleared memory.
    """
    if n_bytes < 0:
        raise ValueError("n_bytes must be >= 0")
    parts = [
        image_trace(width=256, height=max(1, n_bytes // 2 // 256 + 1), seed=seed),
        float_trace(max(1, n_bytes // 4 // 4 + 1), seed=seed + 1),
        pointer_trace(max(1, n_bytes // 10 // 8 + 1), seed=seed + 2),
        zero_run_trace(max(1, n_bytes * 15 // 100 + 1), seed=seed + 3),
    ]
    want = [n_bytes // 2, n_bytes // 4, n_bytes // 10,
            n_bytes - n_bytes // 2 - n_bytes // 4 - n_bytes // 10]
    rng = np.random.default_rng(seed + 4)
    chunks: List[bytes] = []
    for part, length in zip(parts, want):
        chunks.append(part[:length])
    # Shuffle at 256-byte granularity to interleave traffic classes.
    blob = b"".join(chunks)
    blocks = [blob[i:i + 256] for i in range(0, len(blob), 256)]
    rng.shuffle(blocks)
    mixture = b"".join(blocks)
    # Integer division can leave the mixture a few bytes short of the
    # request (the parts are sized by rounded-down shares); cycle it to
    # honour the exact-size contract.
    while len(mixture) < n_bytes:
        mixture += mixture[:n_bytes - len(mixture)]
    return mixture[:n_bytes]


# -- the trace registry ------------------------------------------------------

def _float_bytes(n_bytes: int, seed: int) -> bytes:
    return float_trace(max(1, (n_bytes + 3) // 4), seed)[:n_bytes]


def _image_bytes(n_bytes: int, seed: int) -> bytes:
    return image_trace(width=256, height=max(1, (n_bytes + 255) // 256),
                       seed=seed)[:n_bytes]


def _pointer_bytes(n_bytes: int, seed: int) -> bytes:
    return pointer_trace(max(1, (n_bytes + 7) // 8), seed=seed)[:n_bytes]


def _zero_bytes(n_bytes: int, seed: int) -> bytes:
    return zero_run_trace(n_bytes, seed=seed)


#: Every traffic class under a short name with the normalised
#: ``(n_bytes, seed) -> bytes`` signature.
TRACES: Dict[str, Callable[[int, int], bytes]] = {
    "text": text_trace,
    "float": _float_bytes,
    "image": _image_bytes,
    "pointer": _pointer_bytes,
    "zero": _zero_bytes,
    "gpu": gpu_frame_trace,
}


def available_traces() -> List[str]:
    """Registered trace names, sorted."""
    return sorted(TRACES)


def trace_bytes(name: str, n_bytes: int, seed: int = DEFAULT_SEED) -> bytes:
    """Synthesise *n_bytes* of the named traffic class.

    >>> len(trace_bytes("text", 100))
    100
    """
    try:
        builder = TRACES[name.lower()]
    except KeyError:
        known = ", ".join(available_traces())
        raise KeyError(f"unknown trace {name!r}; known: {known}") from None
    if n_bytes < 1:
        raise ValueError(f"n_bytes must be >= 1, got {n_bytes}")
    return builder(n_bytes, seed)
