"""Deterministic corner-case burst patterns.

Directed patterns for unit tests, hardware-model validation and worst-case
analysis: all-zeros (maximum DC stress), alternating checkerboards (maximum
AC stress), walking ones/zeros (classic signal-integrity patterns), and the
JEDEC-style PRBS-ish mixtures.  Each generator documents which scheme it is
designed to stress.

:data:`PATTERNS` is the name → generator registry behind the CLI and the
experiment engine; :func:`pattern_population` wraps a selection of
patterns as a *rectangular* :class:`~repro.workloads.population
.ExplicitPopulation`, so patterned workloads pack into ``(batch, n)``
arrays and run straight through the schemes' ``batch_flags`` vector
kernels like any other population source.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.burst import DEFAULT_BURST_LENGTH, Burst


def all_zeros(burst_length: int = DEFAULT_BURST_LENGTH) -> Burst:
    """Worst case for DC energy: every lane low every beat.

    DBI DC/OPT invert every byte, converting 64 zeros into 8 DBI zeros.
    """
    return Burst([0x00] * burst_length)


def all_ones(burst_length: int = DEFAULT_BURST_LENGTH) -> Burst:
    """Best case: nothing to do — zero DC and zero AC cost after encoding."""
    return Burst([0xFF] * burst_length)


def checkerboard(burst_length: int = DEFAULT_BURST_LENGTH) -> Burst:
    """0x55/0xAA alternation: every lane toggles every beat (AC worst case).

    DBI AC/OPT can replace eight toggling data lanes per beat with a single
    DBI-lane toggle.
    """
    return Burst([0x55 if i % 2 == 0 else 0xAA for i in range(burst_length)])


def static_checkerboard(burst_length: int = DEFAULT_BURST_LENGTH) -> Burst:
    """Constant 0x55: half the lanes sit at zero, no toggles after beat 1."""
    return Burst([0x55] * burst_length)


def walking_ones(burst_length: int = DEFAULT_BURST_LENGTH) -> Burst:
    """A single one rotating through the byte (signal-integrity pattern)."""
    return Burst([1 << (i % 8) for i in range(burst_length)])


def walking_zeros(burst_length: int = DEFAULT_BURST_LENGTH) -> Burst:
    """A single zero rotating through the byte."""
    return Burst([(~(1 << (i % 8))) & 0xFF for i in range(burst_length)])


def ramp(burst_length: int = DEFAULT_BURST_LENGTH, start: int = 0) -> Burst:
    """Incrementing counter bytes — the classic address/stride pattern."""
    return Burst([(start + i) & 0xFF for i in range(burst_length)])


#: Name → generator registry, in the canonical suite order.  Every
#: generator takes ``burst_length`` and returns one
#: :class:`~repro.core.burst.Burst`.
PATTERNS: Dict[str, object] = {
    "all_zeros": all_zeros,
    "all_ones": all_ones,
    "checkerboard": checkerboard,
    "static_checkerboard": static_checkerboard,
    "walking_ones": walking_ones,
    "walking_zeros": walking_zeros,
    "ramp": ramp,
}

PATTERN_NAMES = list(PATTERNS)


def get_pattern(name: str,
                burst_length: int = DEFAULT_BURST_LENGTH) -> Burst:
    """One named directed pattern.

    >>> get_pattern("walking_ones", 3).data
    (1, 2, 4)
    """
    try:
        generator = PATTERNS[name]
    except KeyError:
        known = ", ".join(PATTERN_NAMES)
        raise KeyError(
            f"unknown pattern {name!r}; known patterns: {known}") from None
    return generator(burst_length)


def pattern_suite(burst_length: int = DEFAULT_BURST_LENGTH) -> List[Burst]:
    """The full directed suite, one burst per named pattern."""
    return [generator(burst_length) for generator in PATTERNS.values()]


def pattern_population(names: Optional[Sequence[str]] = None,
                       burst_length: int = DEFAULT_BURST_LENGTH,
                       repeats: int = 1):
    """The directed suite as a batch-capable population source.

    Selects *names* (default: the whole registry, suite order) at a
    common *burst_length* and wraps them in an
    :class:`~repro.workloads.population.ExplicitPopulation`.  All
    patterns share one length, so the population is rectangular —
    ``burst_length is not None`` — and the experiment engine's vector
    fast paths pack it directly into the schemes' batch kernels.
    ``repeats`` tiles the selection (pattern-major) for workloads that
    want more than one burst per pattern.
    """
    from .population import ExplicitPopulation

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    selected = list(names) if names is not None else PATTERN_NAMES
    bursts = [get_pattern(name, burst_length) for name in selected]
    return ExplicitPopulation(bursts * repeats)
