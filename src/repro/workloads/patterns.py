"""Deterministic corner-case burst patterns.

Directed patterns for unit tests, hardware-model validation and worst-case
analysis: all-zeros (maximum DC stress), alternating checkerboards (maximum
AC stress), walking ones/zeros (classic signal-integrity patterns), and the
JEDEC-style PRBS-ish mixtures.  Each generator documents which scheme it is
designed to stress.
"""

from __future__ import annotations

from typing import List

from ..core.burst import DEFAULT_BURST_LENGTH, Burst


def all_zeros(burst_length: int = DEFAULT_BURST_LENGTH) -> Burst:
    """Worst case for DC energy: every lane low every beat.

    DBI DC/OPT invert every byte, converting 64 zeros into 8 DBI zeros.
    """
    return Burst([0x00] * burst_length)


def all_ones(burst_length: int = DEFAULT_BURST_LENGTH) -> Burst:
    """Best case: nothing to do — zero DC and zero AC cost after encoding."""
    return Burst([0xFF] * burst_length)


def checkerboard(burst_length: int = DEFAULT_BURST_LENGTH) -> Burst:
    """0x55/0xAA alternation: every lane toggles every beat (AC worst case).

    DBI AC/OPT can replace eight toggling data lanes per beat with a single
    DBI-lane toggle.
    """
    return Burst([0x55 if i % 2 == 0 else 0xAA for i in range(burst_length)])


def static_checkerboard(burst_length: int = DEFAULT_BURST_LENGTH) -> Burst:
    """Constant 0x55: half the lanes sit at zero, no toggles after beat 1."""
    return Burst([0x55] * burst_length)


def walking_ones(burst_length: int = DEFAULT_BURST_LENGTH) -> Burst:
    """A single one rotating through the byte (signal-integrity pattern)."""
    return Burst([1 << (i % 8) for i in range(burst_length)])


def walking_zeros(burst_length: int = DEFAULT_BURST_LENGTH) -> Burst:
    """A single zero rotating through the byte."""
    return Burst([(~(1 << (i % 8))) & 0xFF for i in range(burst_length)])


def ramp(burst_length: int = DEFAULT_BURST_LENGTH, start: int = 0) -> Burst:
    """Incrementing counter bytes — the classic address/stride pattern."""
    return Burst([(start + i) & 0xFF for i in range(burst_length)])


def pattern_suite(burst_length: int = DEFAULT_BURST_LENGTH) -> List[Burst]:
    """The full directed suite, one burst per named pattern."""
    return [
        all_zeros(burst_length),
        all_ones(burst_length),
        checkerboard(burst_length),
        static_checkerboard(burst_length),
        walking_ones(burst_length),
        walking_zeros(burst_length),
        ramp(burst_length),
    ]


PATTERN_NAMES = [
    "all_zeros",
    "all_ones",
    "checkerboard",
    "static_checkerboard",
    "walking_ones",
    "walking_zeros",
    "ramp",
]
