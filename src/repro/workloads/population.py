"""Burst population sources for the experiment engine.

A :class:`BurstPopulation` is a *deterministic, content-addressed* source
of bursts: it knows its size, yields bursts in fixed-size chunks (so
million-burst experiments never hold a whole population in memory), and
exposes a :meth:`~BurstPopulation.digest` that identifies its exact
content — the population half of the experiment engine's activity-cache
key (:class:`repro.sim.experiments.ActivityCache`).

Two concrete sources cover the paper's experiments:

* :class:`RandomPopulation` — the declarative form of
  :func:`repro.workloads.random_data.random_bursts`: with NumPy installed
  it regenerates byte-for-byte the same bursts from ``(count,
  burst_length, seed)`` without ever being serialised, so a process-pool
  worker can rebuild it from a tiny pickle.  Without NumPy a pure-Python
  stream (``random.Random``) is used — deterministic too, but a different
  byte sequence, which the digest records.
* :class:`ExplicitPopulation` — wraps an in-memory ``Sequence[Burst]``
  (the legacy sweep-function inputs); its digest hashes the burst bytes.

Chunked iteration is exact: for every source, the concatenation of
``iter_chunks()`` equals ``bursts()`` equals the monolithic generation
(for :class:`RandomPopulation` this relies on NumPy's bit-stream
generators filling bounded-integer draws sequentially, which the test
suite pins).
"""

from __future__ import annotations

import abc
import hashlib
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from ..core.burst import DEFAULT_BURST_LENGTH, Burst

try:  # pragma: no cover - trivially true/false per environment
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Bursts per chunk when streaming a population (512 KiB of payload at
#: the JEDEC burst length — small enough to stay cache-friendly, large
#: enough that the vector backend amortises its per-call overhead).
DEFAULT_CHUNK_SIZE = 65536

#: Fixed RNG draw granularity (rows) for random populations.  NumPy's
#: bounded-integer sampling discards a partially consumed buffer word at
#: the end of every call, so draws must happen at a chunk-size-independent
#: granularity for the byte stream to be invariant to how a consumer
#: chunks it.  65536 rows × any burst length is a multiple of 4 bytes
#: (one 32-bit buffer word), so consecutive whole blocks concatenate
#: bit-identically to a single monolithic draw.
GENERATION_BLOCK = 65536

#: Tag recording which generator family produced a random population.
GENERATOR_TAG = "np" if _np is not None else "py"


class BurstPopulation(abc.ABC):
    """Deterministic burst source consumed chunk-by-chunk by the engine."""

    @property
    @abc.abstractmethod
    def burst_length(self) -> Optional[int]:
        """Common burst length, or ``None`` when the population is ragged
        (ragged populations always take the per-burst reference path)."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Total number of bursts."""

    @abc.abstractmethod
    def digest(self) -> str:
        """Stable content identifier (equal digests ⇒ equal bursts)."""

    @abc.abstractmethod
    def iter_chunks(self, chunk_size: int = DEFAULT_CHUNK_SIZE
                    ) -> Iterator[List[Burst]]:
        """Yield the population as consecutive lists of ≤ *chunk_size*."""

    def iter_packed(self, chunk_size: int = DEFAULT_CHUNK_SIZE):
        """Yield packed ``(chunk, burst_length)`` ``uint8`` arrays.

        The fast lane of the vector backend: sources that can produce
        arrays directly (e.g. :class:`RandomPopulation`) override this to
        skip :class:`~repro.core.burst.Burst` object construction
        entirely.  Requires NumPy and a rectangular population.
        """
        from ..core.vectorized import pack_bursts

        if self.burst_length is None:
            raise ValueError("ragged population cannot be packed")
        for chunk in self.iter_chunks(chunk_size):
            yield pack_bursts(chunk)

    def bursts(self) -> List[Burst]:
        """Materialise the whole population as a list."""
        out: List[Burst] = []
        for chunk in self.iter_chunks():
            out.extend(chunk)
        return out

    def __iter__(self) -> Iterator[Burst]:
        for chunk in self.iter_chunks():
            yield from chunk


@dataclass(frozen=True)
class RandomPopulation(BurstPopulation):
    """Declarative iid uniform-random population (Fig. 3/4 workload).

    With NumPy installed this reproduces
    :func:`repro.workloads.random_data.random_bursts` byte-for-byte;
    without it a deterministic pure-Python stream is substituted (and
    :meth:`digest` distinguishes the two, so activity caches and
    artifacts never conflate them).
    """

    count: int
    burst_length: int = DEFAULT_BURST_LENGTH
    seed: int = 0x0DB1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.burst_length < 1:
            raise ValueError(
                f"burst_length must be >= 1, got {self.burst_length}")

    def __len__(self) -> int:
        return self.count

    def digest(self) -> str:
        return (f"random:{self.count}x{self.burst_length}"
                f":seed={self.seed}:{GENERATOR_TAG}")

    def _chunk_sizes(self, chunk_size: int) -> Iterator[int]:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        remaining = self.count
        while remaining:
            step = min(chunk_size, remaining)
            yield step
            remaining -= step

    def _generation_blocks(self):
        """RNG draws at the fixed :data:`GENERATION_BLOCK` granularity,
        so the produced byte stream never depends on the consumer's
        chunk size (see the constant's docstring)."""
        rng = _np.random.default_rng(self.seed)
        remaining = self.count
        while remaining:
            step = min(GENERATION_BLOCK, remaining)
            yield rng.integers(0, 256, size=(step, self.burst_length),
                               dtype=_np.uint8)
            remaining -= step

    def iter_packed(self, chunk_size: int = DEFAULT_CHUNK_SIZE):
        if _np is None:
            raise RuntimeError("iter_packed requires NumPy")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        carry = None
        for block in self._generation_blocks():
            if carry is not None and len(carry):
                block = _np.concatenate([carry, block])
            start = 0
            while len(block) - start >= chunk_size:
                yield block[start:start + chunk_size]
                start += chunk_size
            carry = block[start:]
        if carry is not None and len(carry):
            yield carry

    def iter_chunks(self, chunk_size: int = DEFAULT_CHUNK_SIZE
                    ) -> Iterator[List[Burst]]:
        if _np is not None:
            for data in self.iter_packed(chunk_size):
                yield [Burst(row.tolist()) for row in data]
            return
        rng = random.Random(self.seed)
        for step in self._chunk_sizes(chunk_size):
            yield [Burst([rng.getrandbits(8)
                          for _ in range(self.burst_length)])
                   for _ in range(step)]


class ExplicitPopulation(BurstPopulation):
    """An in-memory burst sequence (the legacy sweep-function input)."""

    def __init__(self, bursts: Sequence[Burst]):
        burst_list = [burst if isinstance(burst, Burst) else Burst(burst)
                      for burst in bursts]
        if not burst_list:
            raise ValueError("burst population is empty")
        self._bursts = tuple(burst_list)
        lengths = {len(burst) for burst in self._bursts}
        self._burst_length = lengths.pop() if len(lengths) == 1 else None
        self._digest: Optional[str] = None

    @property
    def burst_length(self) -> Optional[int]:
        return self._burst_length

    def __len__(self) -> int:
        return len(self._bursts)

    def digest(self) -> str:
        if self._digest is None:
            blake = hashlib.sha256()
            for burst in self._bursts:
                blake.update(len(burst).to_bytes(4, "little"))
                blake.update(bytes(burst.data))
            self._digest = f"sha256:{blake.hexdigest()[:32]}"
        return self._digest

    def iter_chunks(self, chunk_size: int = DEFAULT_CHUNK_SIZE
                    ) -> Iterator[List[Burst]]:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        for start in range(0, len(self._bursts), chunk_size):
            yield list(self._bursts[start:start + chunk_size])

    def bursts(self) -> List[Burst]:
        return list(self._bursts)


class OpaquePopulation(BurstPopulation):
    """Placeholder for a population that cannot be regenerated.

    Produced when loading an artifact whose population was explicit (or
    was generated by a different generator family): the digest, size and
    shape are known — enough to re-render and to match cache entries —
    but the bursts themselves are gone, so iteration raises.
    """

    def __init__(self, digest: str, count: int,
                 burst_length: Optional[int] = None):
        self._stored_digest = digest
        self._count = count
        self._burst_length = burst_length

    @property
    def burst_length(self) -> Optional[int]:
        return self._burst_length

    def __len__(self) -> int:
        return self._count

    def digest(self) -> str:
        return self._stored_digest

    def iter_chunks(self, chunk_size: int = DEFAULT_CHUNK_SIZE
                    ) -> Iterator[List[Burst]]:
        raise RuntimeError(
            "population is not reconstructible from the artifact "
            f"(digest {self._stored_digest}); re-render only")


def as_population(bursts) -> BurstPopulation:
    """Coerce a burst source to a :class:`BurstPopulation`.

    Populations pass through; any other iterable of bursts is wrapped in
    an :class:`ExplicitPopulation`.
    """
    if isinstance(bursts, BurstPopulation):
        return bursts
    return ExplicitPopulation(list(bursts))
