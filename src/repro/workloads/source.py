"""Bounded-memory trace sources for streaming controller replay.

The replay axis originally carried its trace as one inline ``bytes``
payload — fine for the 64 KiB synthetic traces of the early PRs, hopeless
for the paper's motivating scenario of multi-GB GPU/CPU write traces.
This module introduces the :class:`TraceSource` protocol: a replayable,
content-addressed byte stream that is consumed **one chunk at a time**,
so the write path (:func:`repro.ctrl.controller.transactions_from_source`)
and the replay engine (:func:`repro.sim.experiments.run_replay`) never
hold more than one chunk of trace data in memory.

Sources
-------
* :class:`BytesTraceSource` — an in-memory payload, chunked (the adapter
  that makes every existing inline replay a streaming replay).
* :class:`FileTraceSource` — a trace file on disk, read through
  per-chunk ``mmap`` windows (each window is mapped, copied, and
  unmapped, so resident pages never accumulate with trace size) with a
  plain ``seek``/``read`` fallback.
* :class:`SyntheticTraceSource` — pseudo-random bytes generated
  block-by-block from :class:`random.Random`; **chunk-stable**: the bytes
  depend only on ``(seed, block index)``, never on the chunk size it is
  read with.  Pure stdlib, so multi-GB benchmark traces cost no NumPy
  and no disk.
* :class:`RegistryTraceSource` — adapter for the named
  :data:`repro.workloads.traces.TRACES` classes (their builders are
  monolithic NumPy generators, so this source materialises the payload
  per iteration; use it for the registry's moderate sizes, not for
  multi-GB streams).

Digests
-------
``digest()`` returns exactly the string
``f"sha256:{sha256(payload).hexdigest()[:32]}"`` that
:meth:`repro.sim.experiments.ReplaySpec.payload_digest` computes for an
inline payload of the same bytes — computed **incrementally** while
streaming.  Replay cache keys therefore coincide between the chunked and
the inline path, and every cached replay stays warm when a spec migrates
from ``payload=`` to ``source=``.

Everything here is dependency-free (``RegistryTraceSource`` imports the
NumPy-backed registry lazily), so the streaming path works on the
reference backend without NumPy installed.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import random
from typing import Dict, Iterator, List, Optional, Union

try:  # pragma: no cover - Protocol exists on every supported version
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

#: Default streaming chunk size (1 MiB) — large enough that per-chunk
#: Python overhead is negligible against the encode cost, small enough
#: that peak memory stays flat at any trace size.
DEFAULT_TRACE_CHUNK_BYTES = 1 << 20

#: Generation block of :class:`SyntheticTraceSource`.  Bytes are a pure
#: function of ``(seed, block index)`` at this granularity, which is what
#: makes the source chunk-stable.
SYNTHETIC_BLOCK_BYTES = 65536


def _digest_of(hasher: "hashlib._Hash") -> str:
    """The library-wide payload digest format (see module docstring)."""
    return f"sha256:{hasher.hexdigest()[:32]}"


@runtime_checkable
class TraceSource(Protocol):
    """A replayable, content-addressed, chunk-at-a-time byte stream.

    ``chunks()`` must be restartable: every call yields the same bytes
    from the beginning (replay deduplication may stream a source once
    per distinct cost-model ratio).  ``digest()`` must equal the inline
    digest of the concatenated chunks.
    """

    def digest(self) -> str:
        """Content digest, format-identical to the inline payload digest."""
        ...

    def size(self) -> int:
        """Total bytes the source yields (must be > 0)."""
        ...

    def chunks(self) -> Iterator[bytes]:
        """Yield the payload as consecutive non-empty chunks."""
        ...

    def describe(self) -> Dict[str, object]:
        """JSON-serialisable descriptor for artifact persistence."""
        ...


class BytesTraceSource:
    """An in-memory payload presented through the source protocol.

    The bridge between the inline and the streaming world: replaying a
    ``BytesTraceSource`` is bit-identical to replaying its payload inline
    (same transactions, same digest, same cache keys).
    """

    def __init__(self, payload: bytes,
                 chunk_bytes: int = DEFAULT_TRACE_CHUNK_BYTES):
        if not payload:
            raise ValueError("payload must be non-empty")
        if chunk_bytes < 1:
            raise ValueError(f"chunk_bytes must be >= 1, got {chunk_bytes}")
        self.payload = bytes(payload)
        self.chunk_bytes = chunk_bytes
        self._digest: Optional[str] = None

    def digest(self) -> str:
        if self._digest is None:
            self._digest = _digest_of(hashlib.sha256(self.payload))
        return self._digest

    def size(self) -> int:
        return len(self.payload)

    def chunks(self) -> Iterator[bytes]:
        for start in range(0, len(self.payload), self.chunk_bytes):
            yield self.payload[start:start + self.chunk_bytes]

    def describe(self) -> Dict[str, object]:
        return {"kind": "bytes", "bytes": len(self.payload),
                "chunk_bytes": self.chunk_bytes}


class FileTraceSource:
    """A trace file streamed in bounded memory.

    Each chunk is read through a dedicated ``mmap`` window: the window is
    mapped at the chunk's (allocation-granularity-aligned) offset, the
    chunk bytes are copied out, and the window is closed before the next
    chunk is touched.  Mapping the *whole* file would defeat the point —
    resident mapped pages count toward the process's peak RSS, so a
    full-file map grows peak memory linearly with trace size.  Platforms
    or files that refuse ``mmap`` fall back to ``seek``/``read`` with the
    same chunk boundaries.

    ``limit`` caps how much of the file is streamed (the CLI's
    ``--bytes``); ``digest()`` streams the (capped) file once through an
    incremental hash on first use, and any full ``chunks()`` pass
    refreshes it for free.
    """

    def __init__(self, path: Union[str, os.PathLike],
                 chunk_bytes: int = DEFAULT_TRACE_CHUNK_BYTES,
                 limit: Optional[int] = None, use_mmap: bool = True):
        if chunk_bytes < 1:
            raise ValueError(f"chunk_bytes must be >= 1, got {chunk_bytes}")
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.path = os.fspath(path)
        self.chunk_bytes = chunk_bytes
        self.limit = limit
        self.use_mmap = use_mmap
        file_size = os.path.getsize(self.path)
        self._size = file_size if limit is None else min(limit, file_size)
        if self._size == 0:
            raise ValueError(f"{self.path}: trace file is empty")
        self._digest: Optional[str] = None

    def digest(self) -> str:
        if self._digest is None:
            for __ in self.chunks():  # side effect: hashes incrementally
                pass
        return self._digest

    def size(self) -> int:
        return self._size

    def _read_window(self, handle, offset: int, length: int) -> bytes:
        """One chunk via a transient mmap window (or plain read)."""
        if self.use_mmap:
            granularity = mmap.ALLOCATIONGRANULARITY
            aligned = (offset // granularity) * granularity
            lead = offset - aligned
            try:
                with mmap.mmap(handle.fileno(), lead + length,
                               access=mmap.ACCESS_READ,
                               offset=aligned) as window:
                    return window[lead:lead + length]
            except (ValueError, OSError):
                # Unmappable file (or platform quirk): fall through to
                # plain reads for this and every later chunk.
                self.use_mmap = False
        handle.seek(offset)
        return handle.read(length)

    def chunks(self) -> Iterator[bytes]:
        hasher = hashlib.sha256()
        with open(self.path, "rb") as handle:
            offset = 0
            while offset < self._size:
                length = min(self.chunk_bytes, self._size - offset)
                chunk = self._read_window(handle, offset, length)
                if len(chunk) != length:
                    raise OSError(
                        f"{self.path}: short read at offset {offset} "
                        f"(file truncated while streaming?)")
                hasher.update(chunk)
                offset += length
                yield chunk
        self._digest = _digest_of(hasher)

    def describe(self) -> Dict[str, object]:
        record: Dict[str, object] = {"kind": "file", "path": self.path,
                                     "bytes": self._size,
                                     "chunk_bytes": self.chunk_bytes}
        if self.limit is not None:
            record["limit"] = self.limit
        return record


class SyntheticTraceSource:
    """Chunk-stable pseudo-random trace of arbitrary size, pure stdlib.

    Block *i* of :data:`SYNTHETIC_BLOCK_BYTES` bytes is drawn from
    ``random.Random(seed ^ (i * GOLDEN))`` — a pure function of the seed
    and the block index — so any chunk size (and any partial read) sees
    the same bytes, and the digest is a stable content identifier.
    Generation runs at hundreds of MB/s, which makes this the benchmark
    workhorse for multi-GB streaming replays that should cost no disk.
    """

    #: Odd multiplier decorrelating consecutive block seeds.
    _GOLDEN = 0x9E3779B97F4A7C15

    def __init__(self, n_bytes: int, seed: int = 0x0DB1,
                 chunk_bytes: int = DEFAULT_TRACE_CHUNK_BYTES):
        if n_bytes < 1:
            raise ValueError(f"n_bytes must be >= 1, got {n_bytes}")
        if chunk_bytes < 1:
            raise ValueError(f"chunk_bytes must be >= 1, got {chunk_bytes}")
        self.n_bytes = n_bytes
        self.seed = seed
        self.chunk_bytes = chunk_bytes
        self._digest: Optional[str] = None

    def digest(self) -> str:
        if self._digest is None:
            for __ in self.chunks():
                pass
        return self._digest

    def size(self) -> int:
        return self.n_bytes

    def _block(self, index: int) -> bytes:
        length = min(SYNTHETIC_BLOCK_BYTES,
                     self.n_bytes - index * SYNTHETIC_BLOCK_BYTES)
        rng = random.Random(self.seed ^ (index * self._GOLDEN))
        return rng.randbytes(length)

    def chunks(self) -> Iterator[bytes]:
        hasher = hashlib.sha256()
        pending: List[bytes] = []
        pending_len = 0
        n_blocks = -(-self.n_bytes // SYNTHETIC_BLOCK_BYTES)
        for index in range(n_blocks):
            block = self._block(index)
            hasher.update(block)
            pending.append(block)
            pending_len += len(block)
            if pending_len >= self.chunk_bytes:
                blob = b"".join(pending)
                for start in range(0, pending_len - pending_len
                                   % self.chunk_bytes, self.chunk_bytes):
                    yield blob[start:start + self.chunk_bytes]
                tail = blob[pending_len - pending_len % self.chunk_bytes:]
                pending = [tail] if tail else []
                pending_len = len(tail)
        if pending_len:
            yield b"".join(pending)
        self._digest = _digest_of(hasher)

    def describe(self) -> Dict[str, object]:
        return {"kind": "synthetic", "n_bytes": self.n_bytes,
                "seed": self.seed, "chunk_bytes": self.chunk_bytes}


class RegistryTraceSource:
    """A named :data:`repro.workloads.traces.TRACES` class as a source.

    The registry builders are monolithic NumPy generators, so each
    ``chunks()`` pass materialises the payload once and releases it when
    iteration ends — bounded by the trace size, not by the chunk size.
    Appropriate for the registry's usual sizes (KiB–MiB); use
    :class:`FileTraceSource`/:class:`SyntheticTraceSource` for streams
    that must never materialise.
    """

    def __init__(self, name: str, n_bytes: int, seed: int = 0x0DB1,
                 chunk_bytes: int = DEFAULT_TRACE_CHUNK_BYTES):
        from .traces import TRACES  # NumPy-backed; import only when used

        if name not in TRACES:
            known = ", ".join(sorted(TRACES))
            raise KeyError(f"unknown trace {name!r}; known: {known}")
        if n_bytes < 1:
            raise ValueError(f"n_bytes must be >= 1, got {n_bytes}")
        if chunk_bytes < 1:
            raise ValueError(f"chunk_bytes must be >= 1, got {chunk_bytes}")
        self.name = name
        self.n_bytes = n_bytes
        self.seed = seed
        self.chunk_bytes = chunk_bytes
        self._digest: Optional[str] = None

    def digest(self) -> str:
        if self._digest is None:
            for __ in self.chunks():
                pass
        return self._digest

    def size(self) -> int:
        return self.n_bytes

    def chunks(self) -> Iterator[bytes]:
        from .traces import trace_bytes

        payload = trace_bytes(self.name, self.n_bytes, seed=self.seed)
        self._digest = _digest_of(hashlib.sha256(payload))
        for start in range(0, len(payload), self.chunk_bytes):
            yield payload[start:start + self.chunk_bytes]

    def describe(self) -> Dict[str, object]:
        return {"kind": "registry", "name": self.name,
                "n_bytes": self.n_bytes, "seed": self.seed,
                "chunk_bytes": self.chunk_bytes}


def as_trace_source(value,
                    chunk_bytes: int = DEFAULT_TRACE_CHUNK_BYTES):
    """Coerce bytes / path-like / TraceSource into a :class:`TraceSource`.

    ``bytes`` become a :class:`BytesTraceSource`, strings and path-likes
    a :class:`FileTraceSource`; anything already implementing the
    protocol passes through untouched.
    """
    if isinstance(value, (bytes, bytearray)):
        return BytesTraceSource(bytes(value), chunk_bytes=chunk_bytes)
    if isinstance(value, (str, os.PathLike)):
        return FileTraceSource(value, chunk_bytes=chunk_bytes)
    if (hasattr(value, "chunks") and hasattr(value, "digest")
            and hasattr(value, "size")):
        return value
    raise TypeError(
        f"cannot make a trace source from {type(value).__name__}; pass "
        "bytes, a file path, or a TraceSource")


def source_from_json(record: Dict[str, object]):
    """Rebuild a source from :meth:`TraceSource.describe` output.

    Returns ``None`` when the descriptor cannot be reconstructed in this
    environment (an in-memory ``bytes`` source, a file that no longer
    exists, a registry trace without NumPy) — the caller then loads the
    artifact render-only, exactly like a digest-only inline payload.
    """
    kind = record.get("kind")
    chunk_bytes = int(record.get("chunk_bytes", DEFAULT_TRACE_CHUNK_BYTES))
    if kind == "file":
        path = str(record["path"])
        limit = record.get("limit")
        if not os.path.exists(path):
            return None
        try:
            return FileTraceSource(path, chunk_bytes=chunk_bytes,
                                   limit=None if limit is None
                                   else int(limit))
        except (OSError, ValueError):
            return None
    if kind == "synthetic":
        return SyntheticTraceSource(int(record["n_bytes"]),
                                    seed=int(record.get("seed", 0x0DB1)),
                                    chunk_bytes=chunk_bytes)
    if kind == "registry":
        try:
            return RegistryTraceSource(str(record["name"]),
                                       int(record["n_bytes"]),
                                       seed=int(record.get("seed", 0x0DB1)),
                                       chunk_bytes=chunk_bytes)
        except (ImportError, KeyError):
            return None
    return None
