"""Random burst generators.

The paper's Figs. 3/4 evaluate all schemes on 10 000 uniform-random bursts.
This module provides that workload (seeded, reproducible) plus biased
variants used by the workload-sensitivity ablation: real traffic is rarely
uniform, and the relative merit of DC- vs AC-oriented coding shifts with
the one-density and the temporal correlation of the data.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from ..core.burst import DEFAULT_BURST_LENGTH, Burst

#: Sample count used for the paper's Monte-Carlo figures.
PAPER_SAMPLE_COUNT = 10_000

#: Default RNG seed — fixed so every figure regenerates identically.
DEFAULT_SEED = 0x0DB1


def random_bursts(count: int = PAPER_SAMPLE_COUNT,
                  burst_length: int = DEFAULT_BURST_LENGTH,
                  seed: int = DEFAULT_SEED) -> List[Burst]:
    """*count* iid uniform-random bursts (the paper's Fig. 3/4 workload).

    >>> bursts = random_bursts(count=3, burst_length=4, seed=1)
    >>> [len(b) for b in bursts]
    [4, 4, 4]
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if burst_length < 1:
        raise ValueError(f"burst_length must be >= 1, got {burst_length}")
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(count, burst_length), dtype=np.uint8)
    return [Burst(row.tolist()) for row in data]


def biased_bursts(count: int, one_density: float,
                  burst_length: int = DEFAULT_BURST_LENGTH,
                  seed: int = DEFAULT_SEED) -> List[Burst]:
    """Bursts whose bits are one with probability *one_density*.

    Low densities stress the DC component (many zeros), high densities are
    nearly free on a POD link.

    >>> bursts = biased_bursts(4, one_density=1.0, burst_length=2, seed=7)
    >>> all(byte == 0xFF for b in bursts for byte in b)
    True
    """
    if not 0.0 <= one_density <= 1.0:
        raise ValueError(f"one_density must be in [0, 1], got {one_density}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    rng = np.random.default_rng(seed)
    bits = rng.random(size=(count, burst_length, 8)) < one_density
    weights = (1 << np.arange(8, dtype=np.uint16))
    bytes_matrix = (bits * weights).sum(axis=2).astype(np.uint8)
    return [Burst(row.tolist()) for row in bytes_matrix]


def correlated_bursts(count: int, flip_probability: float = 0.1,
                      burst_length: int = DEFAULT_BURST_LENGTH,
                      seed: int = DEFAULT_SEED) -> List[Burst]:
    """Temporally correlated bursts: each byte is the previous one with
    every bit flipped independently with *flip_probability*.

    Models the low-entropy streams (counters, addresses, slowly varying
    sensor data) where AC-oriented coding shines because raw transition
    counts are already small.
    """
    if not 0.0 <= flip_probability <= 1.0:
        raise ValueError(f"flip_probability must be in [0, 1], got {flip_probability}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    rng = np.random.default_rng(seed)
    bursts: List[Burst] = []
    current = int(rng.integers(0, 256))
    for _ in range(count):
        data: List[int] = []
        for _ in range(burst_length):
            flips = 0
            for bit in range(8):
                if rng.random() < flip_probability:
                    flips |= 1 << bit
            current ^= flips
            data.append(current)
        bursts.append(Burst(data))
    return bursts


def random_payload(n_bytes: int, seed: int = DEFAULT_SEED) -> bytes:
    """A flat uniform-random byte string (bus-level workload)."""
    if n_bytes < 0:
        raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
    rng = np.random.default_rng(seed)
    return bytes(rng.integers(0, 256, size=n_bytes, dtype=np.uint8).tolist())


def burst_stream(burst_length: int = DEFAULT_BURST_LENGTH,
                 seed: int = DEFAULT_SEED,
                 limit: Optional[int] = None) -> Iterator[Burst]:
    """Infinite (or *limit*-bounded) generator of uniform-random bursts."""
    rng = np.random.default_rng(seed)
    produced = 0
    while limit is None or produced < limit:
        data = rng.integers(0, 256, size=burst_length, dtype=np.uint8)
        yield Burst(data.tolist())
        produced += 1
