"""Unified workload registry.

Benchmarks and examples refer to workloads by name; each named workload
produces a list of bursts deterministically (seeded) so figures regenerate
bit-identically.  Payload-style traces are chunked into bursts here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..core.burst import DEFAULT_BURST_LENGTH, Burst, chunk_bytes
from . import patterns, random_data, traces


@dataclass(frozen=True)
class Workload:
    """A named, reproducible burst set."""

    name: str
    description: str
    bursts: tuple

    def __len__(self) -> int:
        return len(self.bursts)


def _bursts_from_payload(payload: bytes, burst_length: int) -> List[Burst]:
    return chunk_bytes(list(payload), burst_length)


def make_workload(name: str, count: int = 1000,
                  burst_length: int = DEFAULT_BURST_LENGTH,
                  seed: int = random_data.DEFAULT_SEED) -> Workload:
    """Instantiate a named workload with roughly *count* bursts.

    Known names: ``random``, ``sparse``, ``dense``, ``correlated``,
    ``text``, ``float``, ``image``, ``pointer``, ``zero-run``, ``gpu``,
    ``patterns``.

    >>> load = make_workload("random", count=10)
    >>> len(load)
    10
    """
    n_bytes = count * burst_length
    builders: Dict[str, Callable[[], List[Burst]]] = {
        "random": lambda: random_data.random_bursts(count, burst_length, seed),
        "sparse": lambda: random_data.biased_bursts(count, 0.25, burst_length, seed),
        "dense": lambda: random_data.biased_bursts(count, 0.75, burst_length, seed),
        "correlated": lambda: random_data.correlated_bursts(count, 0.1, burst_length, seed),
        "text": lambda: _bursts_from_payload(traces.text_trace(n_bytes, seed), burst_length),
        "float": lambda: _bursts_from_payload(traces.float_trace(n_bytes // 4, seed), burst_length),
        "image": lambda: _bursts_from_payload(
            traces.image_trace(width=256, height=max(1, n_bytes // 256), seed=seed)[:n_bytes],
            burst_length),
        "pointer": lambda: _bursts_from_payload(traces.pointer_trace(n_bytes // 8, seed=seed), burst_length),
        "zero-run": lambda: _bursts_from_payload(traces.zero_run_trace(n_bytes, seed=seed), burst_length),
        "gpu": lambda: _bursts_from_payload(traces.gpu_frame_trace(n_bytes, seed), burst_length),
        "patterns": lambda: patterns.pattern_suite(burst_length),
    }
    descriptions = {
        "random": "iid uniform bytes (the paper's Fig. 3/4 workload)",
        "sparse": "bits one with p=0.25 (zero-heavy)",
        "dense": "bits one with p=0.75 (zero-light)",
        "correlated": "bitflip random walk, p=0.1 per bit (low AC activity)",
        "text": "ASCII text (DQ7 pinned low)",
        "float": "float32 samples of a noisy sine",
        "image": "smooth 8-bit image rows",
        "pointer": "64-bit heap pointers",
        "zero-run": "sparse buffers with zero runs",
        "gpu": "GPU-frame-like traffic mixture",
        "patterns": "directed corner-case suite",
    }
    try:
        builder = builders[name]
    except KeyError:
        known = ", ".join(sorted(builders))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
    return Workload(name=name, description=descriptions[name],
                    bursts=tuple(builder()))


def workload_names() -> List[str]:
    """All names accepted by :func:`make_workload`."""
    return ["random", "sparse", "dense", "correlated", "text", "float",
            "image", "pointer", "zero-run", "gpu", "patterns"]
