"""Stub-series terminated logic (SSTL) reference model.

The paper contrasts POD with the older SSTL interface (DDR3 and earlier):
SSTL terminates to ``0.5·VDDQ``, so DC current flows **regardless** of the
transmitted level — ones and zeros merely steer the current.  DBI DC
therefore buys nothing on SSTL, which is why DBI only became standard with
the move to POD.  This module exists to make that contrast measurable: the
energy model can be instantiated over SSTL and shows zero benefit for
zero-minimising codes (asserted by the test-suite).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SstlInterface:
    """Centre-tapped (VTT = VDDQ/2) terminated lane.

    The symmetric termination means both logic levels dissipate the same
    static power; only transitions change the dynamic energy.
    """

    vddq: float
    r_termination: float = 50.0
    r_driver: float = 34.0
    name: str = "SSTL"

    def __post_init__(self) -> None:
        if self.vddq <= 0:
            raise ValueError(f"vddq must be positive, got {self.vddq}")
        if self.r_termination <= 0 or self.r_driver <= 0:
            raise ValueError("resistances must be positive")

    @property
    def vtt(self) -> float:
        """Termination voltage — the mid-rail by construction."""
        return 0.5 * self.vddq

    @property
    def costly_level(self) -> str:
        """Centre-tap termination makes both levels equally expensive."""
        return "both"

    @property
    def termination_current(self) -> float:
        """DC current magnitude in amperes while either level is driven."""
        return self.vtt / (self.r_termination + self.r_driver)

    def dc_current(self, level: int) -> float:
        """Termination current per driven level — identical for 0 and 1."""
        if level not in (0, 1):
            raise ValueError(f"level must be 0 or 1, got {level}")
        return self.termination_current

    @property
    def level_power(self) -> float:
        """Static power while driving either level (identical for 0 and 1).

        Current flows from VTT through the termination into the driver (or
        the reverse); magnitude ``(VDDQ/2) / (R_term + R_drv)`` either way.
        """
        return self.vtt * self.termination_current

    @property
    def v_swing(self) -> float:
        """Swing around VTT set by the divider."""
        return self.vddq * self.r_termination / (self.r_termination + self.r_driver)

    def energy_per_zero(self, data_rate_hz: float) -> float:
        """Energy of driving a zero for one bit time."""
        if data_rate_hz <= 0:
            raise ValueError(f"data rate must be positive, got {data_rate_hz}")
        return self.level_power / data_rate_hz

    def energy_per_one(self, data_rate_hz: float) -> float:
        """Energy of driving a one for one bit time — equal to a zero's."""
        return self.energy_per_zero(data_rate_hz)

    def energy_per_transition(self, c_load_farads: float) -> float:
        """Dynamic energy of one transition across the (smaller) SSTL swing."""
        if c_load_farads <= 0:
            raise ValueError(f"load capacitance must be positive, got {c_load_farads}")
        return 0.5 * self.vddq * self.v_swing * c_load_farads


def sstl15() -> SstlInterface:
    """SSTL-15 (DDR3-class, 1.5 V)."""
    return SstlInterface(vddq=1.5, name="SSTL15")


def sstl135() -> SstlInterface:
    """SSTL-135 (DDR3L-class, 1.35 V)."""
    return SstlInterface(vddq=1.35, name="SSTL135")
