"""CACTI-IO-derived interface energy model (paper §IV-A, Eqs. 1–4).

Following the paper, all lane load capacitances are unified into a single
``c_load`` per lane and the CACTI-IO power equations are reformulated as
energy **per activity event**::

    E_zero       = VDDQ² / (R_pu + R_pd) · (1 / f)          (Eq. 1)
    V_swing      = VDDQ · R_pu / (R_pu + R_pd)              (Eq. 3)
    E_transition = ½ · VDDQ · V_swing · c_load              (Eq. 2)
    E_burst      = n_zeros·E_zero + n_transitions·E_trans   (Eq. 4)

so a burst's interface energy follows directly from the (zeros,
transitions) tallies produced by any :class:`~repro.core.schemes.DbiScheme`.
The model also exposes the equivalent abstract
:class:`~repro.core.costs.CostModel` (alpha = E_transition,
beta = E_zero − E_one), which is how the physical sweeps of Figs. 7/8
drive the optimal encoder.

Since PR 5 the model constructs from **any**
:class:`~repro.phy.interface.Interface` — POD, SSTL or LVSTL — not just
POD.  The POD behaviour (and every float it produces) is unchanged: POD's
``energy_per_one`` is exactly ``0.0``, so the one-level term vanishes and
the differential DC weight collapses to ``E_zero``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..core.costs import CostModel
from ..core.schemes import EncodedBurst
from .interface import Interface
from .pod import PodInterface, pod135

#: One gigabit per second, in hertz of bit time.
GBPS = 1e9

#: One picofarad, in farads.
PICOFARAD = 1e-12

#: One picojoule, in joules.
PICOJOULE = 1e-12


@dataclass(frozen=True)
class InterfaceEnergyModel:
    """Energy-per-event model for one lane group at an operating point.

    Parameters
    ----------
    interface:
        Electrical parameters (voltage, termination network) — any
        :class:`~repro.phy.interface.Interface` implementation (POD,
        SSTL, LVSTL, or a custom model).
    data_rate_hz:
        Per-pin data rate in bits/second (bit time = 1/data_rate).
    c_load_farads:
        Unified lane load capacitance (driver + receiver pads + trace).

    >>> model = InterfaceEnergyModel(pod135(), 12 * GBPS, 3 * PICOFARAD)
    >>> round(model.energy_per_zero / PICOJOULE, 2)
    1.52
    >>> round(model.energy_per_transition / PICOJOULE, 2)
    1.64
    """

    interface: Interface
    data_rate_hz: float
    c_load_farads: float

    def __post_init__(self) -> None:
        if self.data_rate_hz <= 0:
            raise ValueError(f"data rate must be positive, got {self.data_rate_hz}")
        if self.c_load_farads <= 0:
            raise ValueError(f"c_load must be positive, got {self.c_load_farads}")

    # -- per-event energies (paper Eqs. 1-3) -------------------------------
    @property
    def energy_per_zero(self) -> float:
        """E_zero in joules (Eq. 1)."""
        return self.interface.energy_per_zero(self.data_rate_hz)

    @property
    def energy_per_one(self) -> float:
        """Energy of holding a one for one bit time (0 for POD)."""
        return self.interface.energy_per_one(self.data_rate_hz)

    @property
    def energy_per_transition(self) -> float:
        """E_transition in joules (Eq. 2)."""
        return self.interface.energy_per_transition(self.c_load_farads)

    @property
    def v_swing(self) -> float:
        """Signal swing in volts (Eq. 3)."""
        return self.interface.v_swing

    # -- burst-level energy (paper Eq. 4) -----------------------------------
    def burst_energy(self, n_transitions: int, n_zeros: int,
                     lane_beats: int = 0) -> float:
        """E_burst in joules for tallied activity (Eq. 4).

        ``lane_beats`` is the total number of lane-beats the tallies cover
        (9 × byte-beats for DBI'd byte lanes); when given, the one-level
        term ``(lane_beats − n_zeros) · E_one`` is added — zero for POD
        interfaces (E_one = 0), required for exact SSTL/LVSTL accounting.
        The two-argument form is unchanged from the paper's Eq. 4.
        """
        if n_transitions < 0 or n_zeros < 0:
            raise ValueError("activity counts must be non-negative")
        energy = (n_zeros * self.energy_per_zero
                  + n_transitions * self.energy_per_transition)
        if lane_beats:
            if lane_beats < n_zeros:
                raise ValueError(
                    f"lane_beats={lane_beats} is fewer than n_zeros={n_zeros}")
            one_term = (lane_beats - n_zeros) * self.energy_per_one
            if one_term:
                energy += one_term
        return energy

    def encoded_burst_energy(self, encoded: EncodedBurst) -> float:
        """E_burst for a concrete encoded burst."""
        n_transitions, n_zeros = encoded.activity()
        return self.burst_energy(n_transitions, n_zeros)

    # -- bridges to the abstract cost world ---------------------------------
    def cost_model(self) -> CostModel:
        """The equivalent (alpha, beta) = (E_transition, E_zero − E_one)
        weights.

        Feeding this to :class:`~repro.core.encoder.DbiOptimal` makes the
        trellis search minimise true joules at this operating point.  The
        DC weight is *differential*: a burst of fixed length drives every
        lane-beat at one level or the other, so only the excess cost of a
        zero over a one steers the encoding.  On POD (E_one = 0) this is
        exactly the paper's ``beta = E_zero``; on SSTL it is 0 (zeros buy
        nothing, only transitions matter); on LVSTL — where zeros are
        *cheaper* — it clamps to 0, because this library's zero-counting
        convention cannot express a zero-maximising objective (see
        ROADMAP.md: polarity-aware encoding).
        """
        return CostModel.from_energies(
            self.energy_per_transition,
            max(self.energy_per_zero - self.energy_per_one, 0.0))

    @property
    def ac_fraction(self) -> float:
        """Where this operating point sits on Figs. 3/4's x-axis."""
        return self.cost_model().ac_fraction

    def with_data_rate(self, data_rate_hz: float) -> "InterfaceEnergyModel":
        """Same interface and load at a different data rate."""
        return InterfaceEnergyModel(self.interface, data_rate_hz,
                                    self.c_load_farads)

    def with_load(self, c_load_farads: float) -> "InterfaceEnergyModel":
        """Same interface and data rate with a different load."""
        return InterfaceEnergyModel(self.interface, self.data_rate_hz,
                                    c_load_farads)


def crossover_data_rate(interface: PodInterface, c_load_farads: float,
                        ac_fraction: float = 0.5) -> float:
    """Data rate at which the AC-cost fraction reaches *ac_fraction*.

    Solves ``E_trans / (E_trans + E_zero(f)) = ac_fraction`` for ``f``.
    With the default 0.5 this is the rate where one transition costs the
    same as one zero — the sweet spot of DBI OPT (Fixed).

    >>> rate = crossover_data_rate(pod135(), 3 * PICOFARAD)
    >>> 10e9 < rate < 15e9
    True
    """
    if not 0.0 < ac_fraction < 1.0:
        raise ValueError("ac_fraction must be strictly between 0 and 1")
    e_transition = interface.energy_per_transition(c_load_farads)
    # E_zero(f) = zero_power / f; solve e_t/(e_t + P0/f) = a.
    zero_power = interface.zero_power
    return ac_fraction * zero_power / ((1.0 - ac_fraction) * e_transition)
