"""JEDEC device interface profiles used in the paper's evaluation.

Bundles the electrical interface, nominal per-pin data-rate range and bus
organisation of the memory families the paper targets (GDDR5, GDDR5X,
DDR4).  Load-capacitance defaults follow the sources the paper cites:
Amirkhany et al. (1.3 pF GDDR5 driver), CACTI-IO (2 pF DDR4 driver + 1 pF
per device), Vuong's JEDEC roadmap (1.3 pF max per DDR4 input), plus a few
pF of PCB trace; the paper sweeps 1–8 pF total and we default to its 3 pF
headline operating point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .pod import PodInterface, pod12, pod135
from .power import GBPS, InterfaceEnergyModel, PICOFARAD


@dataclass(frozen=True)
class DeviceProfile:
    """Interface-level description of a memory device family.

    Parameters
    ----------
    name:
        Family name for reports.
    interface:
        POD electrical profile.
    dq_width:
        Data pins per channel (x32 for graphics parts, x8/x16 for DDR4).
    max_data_rate_hz:
        Highest standardised per-pin data rate.
    default_c_load_farads:
        Nominal unified load per lane.
    burst_length:
        JEDEC burst length (beats per access).
    """

    name: str
    interface: PodInterface
    dq_width: int
    max_data_rate_hz: float
    default_c_load_farads: float
    burst_length: int = 8

    def __post_init__(self) -> None:
        if self.dq_width < 8 or self.dq_width % 8:
            raise ValueError(f"dq_width must be a positive multiple of 8, got {self.dq_width}")
        if self.max_data_rate_hz <= 0:
            raise ValueError("max_data_rate_hz must be positive")
        if self.default_c_load_farads <= 0:
            raise ValueError("default_c_load_farads must be positive")
        if self.burst_length < 1:
            raise ValueError("burst_length must be >= 1")

    @property
    def byte_lanes(self) -> int:
        """Number of 8-bit lanes, each with its own DBI pin."""
        return self.dq_width // 8

    @property
    def pins_with_dbi(self) -> int:
        """Total signalling pins: DQ plus one DBI per byte lane."""
        return self.dq_width + self.byte_lanes

    def energy_model(self, data_rate_hz: float = 0.0,
                     c_load_farads: float = 0.0) -> InterfaceEnergyModel:
        """Energy model at (data_rate, c_load), defaulting to the profile's."""
        rate = data_rate_hz if data_rate_hz > 0 else self.max_data_rate_hz
        load = c_load_farads if c_load_farads > 0 else self.default_c_load_farads
        return InterfaceEnergyModel(self.interface, rate, load)

    def data_rate_range(self, points: int = 21,
                        max_rate_hz: float = 0.0) -> Tuple[float, ...]:
        """Evenly spaced data rates from near zero to *max_rate_hz*."""
        if points < 2:
            raise ValueError("points must be >= 2")
        top = max_rate_hz if max_rate_hz > 0 else self.max_data_rate_hz
        step = top / points
        return tuple(step * (i + 1) for i in range(points))


def gddr5() -> DeviceProfile:
    """GDDR5 (JESD212C): POD135, up to 8 Gbps/pin, x32 parts."""
    return DeviceProfile(name="GDDR5", interface=pod135(), dq_width=32,
                         max_data_rate_hz=8 * GBPS,
                         default_c_load_farads=3 * PICOFARAD)


def gddr5x() -> DeviceProfile:
    """GDDR5X (JESD232A): POD135, up to 12 Gbps/pin — the paper's 1.5 GHz
    encoder throughput target (8 bytes per cycle)."""
    return DeviceProfile(name="GDDR5X", interface=pod135(), dq_width=32,
                         max_data_rate_hz=12 * GBPS,
                         default_c_load_farads=3 * PICOFARAD)


def ddr4() -> DeviceProfile:
    """DDR4 (JESD79-4B): POD12, up to 3.2 Gbps/pin, x8 devices."""
    return DeviceProfile(name="DDR4", interface=pod12(), dq_width=8,
                         max_data_rate_hz=3.2 * GBPS,
                         default_c_load_farads=3 * PICOFARAD)


#: All built-in profiles keyed by lower-case family name.
PROFILES = {
    "gddr5": gddr5,
    "gddr5x": gddr5x,
    "ddr4": ddr4,
}


def get_profile(name: str) -> DeviceProfile:
    """Look up a built-in device profile by (case-insensitive) name."""
    try:
        return PROFILES[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise KeyError(f"unknown device profile {name!r}; known: {known}") from None
