"""Per-lane signal state tracking.

:class:`Lane` models one physical wire of the interface: it remembers its
current logic level and accumulates zero-beats and transition counts as
words are clocked through.  :class:`LaneGroup` bundles the nine wires of a
byte lane (DQ0–DQ7 + DBI) and applies 9-bit words beat by beat, yielding
exactly the same totals as the word-level tallies in :mod:`repro.core`
(cross-checked by the test-suite) while additionally exposing *per-wire*
statistics — useful for studying simultaneous-switching-output patterns
and lane imbalance that the aggregate counts hide.

Word sequences can be clocked two ways: :meth:`LaneGroup.drive_words`
walks beat by beat (one :meth:`Lane.drive` per wire per beat — the
differential reference), while :meth:`LaneGroup.drive_words_batch` packs
the stream into one bit plane per wire and tallies zero-beats and
transitions with popcounts via the :mod:`repro.hw.bitsim` word kernels —
bit-identical counters, one pass per wire instead of one call per beat,
and NumPy-free under ``word_impl="int"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from ..core.bitops import WORD_WIDTH, check_word, popcount
from ..hw.bitsim import get_kernel


@dataclass
class Lane:
    """One wire with activity counters.

    >>> lane = Lane(name="DQ0")
    >>> lane.drive(0); lane.drive(0); lane.drive(1)
    >>> (lane.zero_beats, lane.transitions)
    (2, 2)
    """

    name: str = "lane"
    level: int = 1  # idle high, matching the paper's boundary condition
    zero_beats: int = 0
    transitions: int = 0
    beats: int = 0

    def drive(self, level: int) -> None:
        """Clock one beat with the wire driven to *level* (0 or 1)."""
        if level not in (0, 1):
            raise ValueError(f"level must be 0 or 1, got {level}")
        if level != self.level:
            self.transitions += 1
        if level == 0:
            self.zero_beats += 1
        self.level = level
        self.beats += 1

    @property
    def zero_fraction(self) -> float:
        """Fraction of beats spent driving a zero."""
        return self.zero_beats / self.beats if self.beats else 0.0

    @property
    def toggle_rate(self) -> float:
        """Transitions per beat (0..1)."""
        return self.transitions / self.beats if self.beats else 0.0

    def reset(self, level: int = 1) -> None:
        """Clear counters and return the wire to *level*."""
        if level not in (0, 1):
            raise ValueError(f"level must be 0 or 1, got {level}")
        self.level = level
        self.zero_beats = 0
        self.transitions = 0
        self.beats = 0


@dataclass
class LaneGroup:
    """The nine wires of one byte lane: DQ0..DQ7 plus DBI.

    >>> group = LaneGroup()
    >>> group.drive_word(0x1FF)
    >>> group.total_transitions
    0
    """

    lanes: List[Lane] = field(default_factory=lambda: (
        [Lane(name=f"DQ{i}") for i in range(WORD_WIDTH - 1)] + [Lane(name="DBI")]))

    def __post_init__(self) -> None:
        if len(self.lanes) != WORD_WIDTH:
            raise ValueError(f"a lane group needs {WORD_WIDTH} lanes, got {len(self.lanes)}")

    def drive_word(self, word: int) -> None:
        """Clock one 9-bit word onto the wires (bit i -> lane i)."""
        check_word(word)
        for position, lane in enumerate(self.lanes):
            lane.drive((word >> position) & 1)

    def drive_words(self, words: Iterable[int]) -> None:
        """Clock a whole word sequence (scalar reference path)."""
        for word in words:
            self.drive_word(word)

    def drive_words_batch(self, words: Sequence[int],
                          word_impl: str = "auto") -> None:
        """Clock a whole word sequence via bit-plane popcounts.

        Packs the stream into one bit plane per wire (bit *t* of plane
        *i* = lane *i* at beat *t*) with a :mod:`repro.hw.bitsim` word
        kernel, then reads each wire's zero-beats off one popcount and
        its transitions off one shifted-XOR popcount plus the boundary
        toggle from the wire's current level.  Counters, levels and
        :attr:`state_word` end up bit-identical to :meth:`drive_words`
        (the differential suite in ``tests/phy/test_lane.py`` enforces
        it); ``word_impl="int"`` runs NumPy-free.
        """
        word_list = list(words)
        beats = len(word_list)
        if not beats:
            return
        for word in word_list:
            check_word(word)
        kernel = get_kernel(word_impl)
        planes = kernel.pack_bus(word_list, WORD_WIDTH, beats)
        for position, lane in enumerate(self.lanes):
            plane = planes[position]
            transitions = kernel.transition_count(plane, beats)
            if kernel.first_bit(plane) != lane.level:
                transitions += 1
            lane.zero_beats += beats - kernel.popcount(plane)
            lane.transitions += transitions
            lane.level = kernel.last_bit(plane, beats)
            lane.beats += beats

    # -- aggregates ---------------------------------------------------------
    @property
    def total_zero_beats(self) -> int:
        """Sum of zero-beats over all nine wires."""
        return sum(lane.zero_beats for lane in self.lanes)

    @property
    def total_transitions(self) -> int:
        """Sum of transitions over all nine wires."""
        return sum(lane.transitions for lane in self.lanes)

    @property
    def state_word(self) -> int:
        """Current 9-bit level pattern on the wires."""
        word = 0
        for position, lane in enumerate(self.lanes):
            word |= lane.level << position
        return word

    def per_lane_stats(self) -> List[Tuple[str, int, int]]:
        """``(name, zero_beats, transitions)`` per wire, DQ0..DBI order."""
        return [(lane.name, lane.zero_beats, lane.transitions) for lane in self.lanes]

    def max_simultaneous_switching(self, words: Iterable[int]) -> int:
        """Worst-case lanes toggling in a single beat over *words*.

        The SSO figure of merit of Kim et al. (paper ref. [14]): DBI DC
        bounds this at 5 per byte lane, RAW can hit 9.  Uses the same
        :func:`~repro.core.bitops.popcount` as the word-level tallies in
        :func:`repro.analysis.sso.sso_of_words`, so the two SSO counts
        cannot drift (the parity test in ``tests/phy/test_lane.py``
        enforces it).
        """
        worst = 0
        level = self.state_word
        for word in words:
            check_word(word)
            worst = max(worst, popcount(level ^ word))
            level = word
        return worst

    def reset(self, word: int = (1 << WORD_WIDTH) - 1) -> None:
        """Reset all wires to the bit pattern of *word*."""
        check_word(word)
        for position, lane in enumerate(self.lanes):
            lane.reset((word >> position) & 1)
