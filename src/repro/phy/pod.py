"""Pseudo-open-drain (POD) interface electrical model (paper Fig. 1).

POD links (JEDEC JESD8-20: POD15; the POD135/POD12 descendants used by
GDDR5/GDDR5X and DDR4) terminate the line to VDDQ through an on-die
termination resistor.  Driving a **one** only holds the line at VDDQ — no
DC current flows.  Driving a **zero** pulls the line low through the driver
pulldown, so a DC current ``VDDQ / (R_pullup + R_pulldown)`` flows for the
whole bit time.  Every 0↔1 transition additionally (dis)charges the lane's
load capacitance across the signal swing.

This asymmetry — zeros cost static power, transitions cost dynamic power —
is the entire motivation for DBI coding and for the paper's joint DC/AC
optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PodInterface:
    """Electrical parameters of one POD-terminated lane.

    Parameters
    ----------
    vddq:
        I/O supply / termination voltage in volts.
    r_pullup:
        On-die termination resistance to VDDQ in ohms.
    r_pulldown:
        Driver pulldown (output) resistance in ohms.
    name:
        JEDEC-style label for reports.
    """

    vddq: float
    r_pullup: float = 60.0
    r_pulldown: float = 40.0
    name: str = "POD"

    def __post_init__(self) -> None:
        if self.vddq <= 0:
            raise ValueError(f"vddq must be positive, got {self.vddq}")
        if self.r_pullup <= 0 or self.r_pulldown <= 0:
            raise ValueError("termination/driver resistances must be positive")

    # -- DC behaviour ------------------------------------------------------
    @property
    def costly_level(self) -> str:
        """Zeros burn DC power on a VDDQ-terminated line (the DBI premise)."""
        return "zero"

    @property
    def termination_current(self) -> float:
        """DC current in amperes while a zero is driven (paper Eq. 1's core)."""
        return self.vddq / (self.r_pullup + self.r_pulldown)

    def dc_current(self, level: int) -> float:
        """Termination current per driven level: ones are free on POD."""
        if level not in (0, 1):
            raise ValueError(f"level must be 0 or 1, got {level}")
        return self.termination_current if level == 0 else 0.0

    @property
    def zero_power(self) -> float:
        """Static power in watts dissipated while transmitting a zero."""
        return self.vddq * self.termination_current

    @property
    def v_low(self) -> float:
        """Output-low voltage set by the resistor divider."""
        return self.vddq * self.r_pulldown / (self.r_pullup + self.r_pulldown)

    @property
    def v_swing(self) -> float:
        """Signal swing (paper Eq. 3): ``VDDQ·R_pu/(R_pu+R_pd)``."""
        return self.vddq * self.r_pullup / (self.r_pullup + self.r_pulldown)

    # -- derived energies ----------------------------------------------------
    def energy_per_zero(self, data_rate_hz: float) -> float:
        """Energy in joules to hold a zero for one bit time (paper Eq. 1)."""
        if data_rate_hz <= 0:
            raise ValueError(f"data rate must be positive, got {data_rate_hz}")
        return self.zero_power / data_rate_hz

    def energy_per_one(self, data_rate_hz: float) -> float:
        """Energy of holding a one for one bit time — free on POD (the line
        merely rests at VDDQ, no DC current flows)."""
        if data_rate_hz <= 0:
            raise ValueError(f"data rate must be positive, got {data_rate_hz}")
        return 0.0

    def energy_per_transition(self, c_load_farads: float) -> float:
        """Energy in joules of one 0↔1 transition (paper Eq. 2).

        ``½ · VDDQ · V_swing · c_load`` — the factor ½ reflects that charge
        drawn from the supply over a full up/down cycle is shared between
        the rising and falling edge.
        """
        if c_load_farads <= 0:
            raise ValueError(f"load capacitance must be positive, got {c_load_farads}")
        return 0.5 * self.vddq * self.v_swing * c_load_farads

    def scaled(self, vddq: float) -> "PodInterface":
        """Same termination network at a different supply voltage."""
        return PodInterface(vddq=vddq, r_pullup=self.r_pullup,
                            r_pulldown=self.r_pulldown,
                            name=f"POD{int(round(vddq * 100))}")


def pod135(r_pullup: float = 60.0, r_pulldown: float = 40.0) -> PodInterface:
    """POD135 — the 1.35 V interface of GDDR5/GDDR5X (paper Fig. 7 setting)."""
    return PodInterface(vddq=1.35, r_pullup=r_pullup, r_pulldown=r_pulldown,
                        name="POD135")


def pod12(r_pullup: float = 60.0, r_pulldown: float = 40.0) -> PodInterface:
    """POD12 — the 1.2 V interface of DDR4."""
    return PodInterface(vddq=1.2, r_pullup=r_pullup, r_pulldown=r_pulldown,
                        name="POD12")


def pod15(r_pullup: float = 60.0, r_pulldown: float = 40.0) -> PodInterface:
    """POD15 — the original JESD8-20 1.5 V interface (GDDR4 era)."""
    return PodInterface(vddq=1.5, r_pullup=r_pullup, r_pulldown=r_pulldown,
                        name="POD15")
