"""The common electrical-interface protocol behind every energy model.

The paper's analysis runs on POD (pseudo-open-drain) links, but the same
activity accounting — zeros cost static termination power, transitions
cost dynamic switching power — parameterises any single-ended DRAM
interface once the per-event energies are exposed uniformly.  This module
defines that uniform surface, the :class:`Interface` protocol, which
:class:`repro.phy.power.InterfaceEnergyModel` consumes so every figure,
table and controller replay can run at any operating point on any
electrical standard:

===========  =================  ==========================  ==============
standard     termination        DC current flows while ...  ``costly_level``
===========  =================  ==========================  ==============
POD          to VDDQ            driving a **zero**          ``"zero"``
SSTL         to VDDQ/2 (VTT)    driving **either** level    ``"both"``
LVSTL        to VSSQ (ground)   driving a **one**           ``"one"``
===========  =================  ==========================  ==============

Concrete models live in :mod:`repro.phy.pod`, :mod:`repro.phy.sstl` and
:mod:`repro.phy.lvstl`; :data:`INTERFACES` registers the JEDEC-named
presets (``pod135``, ``pod12`` for DDR4, ``lvstl11`` for LPDDR4, ...) so
CLI flags and replay specs can name them.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Protocol, runtime_checkable

#: The three DC-cost polarities an interface can have (see module table).
COSTLY_LEVELS = ("zero", "one", "both")


@runtime_checkable
class Interface(Protocol):
    """Structural protocol of one single-ended lane's electrical model.

    Implementations are frozen dataclasses (:class:`~repro.phy.pod.PodInterface`,
    :class:`~repro.phy.sstl.SstlInterface`,
    :class:`~repro.phy.lvstl.LvstlInterface`); anything exposing this
    surface can drive an :class:`~repro.phy.power.InterfaceEnergyModel`.
    """

    #: JEDEC-style label for reports (``"POD135"``, ``"LVSTL11"``, ...).
    name: str

    #: I/O supply voltage in volts.
    vddq: float

    @property
    def v_swing(self) -> float:
        """Signal swing in volts set by the termination divider."""
        ...

    @property
    def costly_level(self) -> str:
        """Which driven level burns DC power: ``zero``/``one``/``both``."""
        ...

    def dc_current(self, level: int) -> float:
        """DC termination current in amperes while *level* (0/1) is driven."""
        ...

    def energy_per_zero(self, data_rate_hz: float) -> float:
        """Energy in joules to hold a zero for one bit time."""
        ...

    def energy_per_one(self, data_rate_hz: float) -> float:
        """Energy in joules to hold a one for one bit time."""
        ...

    def energy_per_transition(self, c_load_farads: float) -> float:
        """Dynamic energy in joules of one 0↔1 transition."""
        ...


def _builtin_factories() -> Dict[str, Callable[[], "Interface"]]:
    # Imported lazily so interface.py stays importable from the concrete
    # modules without a cycle.
    from .lvstl import lvstl11
    from .pod import pod12, pod135, pod15
    from .sstl import sstl135, sstl15

    return {
        "pod135": pod135,       # GDDR5/GDDR5X (paper headline)
        "pod12": pod12,         # DDR4-POD12
        "pod15": pod15,         # JESD8-20 original
        "sstl15": sstl15,       # DDR3
        "sstl135": sstl135,     # DDR3L
        "lvstl11": lvstl11,     # LPDDR4-LVSTL
    }


#: Built-in interface presets keyed by lower-case JEDEC-ish name.
INTERFACES: Dict[str, Callable[[], "Interface"]] = _builtin_factories()


def available_interfaces() -> List[str]:
    """Registered preset names, sorted."""
    return sorted(INTERFACES)


def get_interface(name: str) -> "Interface":
    """Instantiate a built-in interface preset by (case-insensitive) name.

    >>> get_interface("pod135").name
    'POD135'
    >>> get_interface("lvstl11").costly_level
    'one'
    """
    try:
        factory = INTERFACES[name.lower()]
    except KeyError:
        known = ", ".join(available_interfaces())
        raise KeyError(
            f"unknown interface {name!r}; known presets: {known}") from None
    return factory()
