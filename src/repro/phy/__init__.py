"""Physical-layer models: POD/SSTL electrics, CACTI-IO energy, bus simulator."""

from .bus import BusStatistics, ByteLane, MemoryBus
from .devices import DeviceProfile, PROFILES, ddr4, gddr5, gddr5x, get_profile
from .lane import Lane, LaneGroup
from .pod import PodInterface, pod12, pod135, pod15
from .power import (
    GBPS,
    InterfaceEnergyModel,
    PICOFARAD,
    PICOJOULE,
    crossover_data_rate,
)
from .sstl import SstlInterface, sstl135, sstl15

__all__ = [
    "BusStatistics",
    "ByteLane",
    "DeviceProfile",
    "GBPS",
    "InterfaceEnergyModel",
    "Lane",
    "LaneGroup",
    "MemoryBus",
    "PICOFARAD",
    "PICOJOULE",
    "PodInterface",
    "PROFILES",
    "SstlInterface",
    "crossover_data_rate",
    "ddr4",
    "get_profile",
    "gddr5",
    "gddr5x",
    "pod12",
    "pod135",
    "pod15",
    "sstl135",
    "sstl15",
]
