"""Physical-layer models: interface electrics, CACTI-IO energy, bus simulator.

The interface-model protocol
----------------------------
Every electrical standard is modelled behind one structural protocol,
:class:`~repro.phy.interface.Interface` — termination currents
(``dc_current(level)``), signal swing (``v_swing``), and per-event
energies (``energy_per_zero`` / ``energy_per_one`` / ``energy_per_transition``).
Three families implement it:

* :class:`~repro.phy.pod.PodInterface` — VDDQ-terminated (GDDR5/GDDR5X,
  DDR4-POD12): zeros burn DC power, ``costly_level == "zero"``;
* :class:`~repro.phy.sstl.SstlInterface` — mid-rail-terminated (DDR3):
  both levels burn the same DC power, ``costly_level == "both"``;
* :class:`~repro.phy.lvstl.LvstlInterface` — ground-terminated
  (LPDDR4-LVSTL): ones burn DC power, ``costly_level == "one"``.

:class:`~repro.phy.power.InterfaceEnergyModel` constructs from any of
them, so every figure, table and controller replay can run at any
operating point on any standard; named presets (``pod135``, ``pod12``,
``sstl15``, ``lvstl11``, ...) are resolved with
:func:`~repro.phy.interface.get_interface` and listed in
:data:`~repro.phy.interface.INTERFACES`.  The model's
:meth:`~repro.phy.power.InterfaceEnergyModel.cost_model` bridge prices
the DC weight *differentially* (``E_zero − E_one``, clamped at 0), which
is what the streaming encoders of :mod:`repro.ctrl` optimise.

Simulation backends
-------------------
Like :mod:`repro.hw`, the statistics layer runs on two interchangeable
engines with bit-identical results:

* **scalar** — :meth:`~repro.phy.lane.LaneGroup.drive_words` clocks one
  :meth:`~repro.phy.lane.Lane.drive` per wire per beat, and
  :class:`~repro.phy.bus.MemoryBus` on ``backend="reference"`` encodes
  one burst at a time.  Always available; the differential reference.
* **word-parallel** — :meth:`~repro.phy.lane.LaneGroup.drive_words_batch`
  packs each wire's beat stream into one bit plane and tallies
  zero-beats/transitions with the popcount kernels of
  :mod:`repro.hw.bitsim` (``word_impl="int"`` works without NumPy,
  ``"uint64"`` uses packed NumPy lanes), and :class:`MemoryBus` on the
  ``vector`` backend encodes each lane's whole burst train through
  :meth:`~repro.core.schemes.DbiScheme.batch_flags` with state threaded
  across bursts.

``backend=None`` defers to ``REPRO_BACKEND``/auto exactly like the
encode path (:func:`repro.core.vectorized.resolve_backend`); the paired
scalar/batched tests in ``tests/phy`` enforce identity between the
engines.
"""

from .bus import BusStatistics, ByteLane, MemoryBus
from .devices import DeviceProfile, PROFILES, ddr4, gddr5, gddr5x, get_profile
from .interface import (
    COSTLY_LEVELS,
    INTERFACES,
    Interface,
    available_interfaces,
    get_interface,
)
from .lane import Lane, LaneGroup
from .lvstl import LvstlInterface, lvstl11
from .pod import PodInterface, pod12, pod135, pod15
from .power import (
    GBPS,
    InterfaceEnergyModel,
    PICOFARAD,
    PICOJOULE,
    crossover_data_rate,
)
from .sstl import SstlInterface, sstl135, sstl15

__all__ = [
    "BusStatistics",
    "ByteLane",
    "COSTLY_LEVELS",
    "DeviceProfile",
    "GBPS",
    "INTERFACES",
    "Interface",
    "InterfaceEnergyModel",
    "Lane",
    "LaneGroup",
    "LvstlInterface",
    "MemoryBus",
    "PICOFARAD",
    "PICOJOULE",
    "PodInterface",
    "PROFILES",
    "SstlInterface",
    "available_interfaces",
    "crossover_data_rate",
    "ddr4",
    "get_interface",
    "get_profile",
    "gddr5",
    "gddr5x",
    "lvstl11",
    "pod12",
    "pod135",
    "pod15",
    "sstl135",
    "sstl15",
]
