"""Low-voltage swing terminated logic (LVSTL) — the LPDDR4 interface.

LVSTL (JESD209-4) terminates the line to **VSSQ (ground)** through the
receiver's on-die termination.  The polarity of the DC cost is therefore
the exact mirror of POD: driving a **one** pulls current from the supply
through the driver pull-up and the termination to ground for the whole
bit time, while driving a **zero** holds the line at ground for free.
(This is why LPDDR4's DBI-DC inverts bytes with too many *ones*, where
GDDR5/DDR4 invert bytes with too many *zeros*.)

Within this library's zero-counting activity convention the consequence
is stark: the per-beat level energy of an LVSTL lane *decreases* with
every extra zero, so a zero-minimising code is actively harmful and the
differential cost-model bridge of
:meth:`repro.phy.power.InterfaceEnergyModel.cost_model` clamps the DC
weight to zero (transition-only optimisation).  Polarity-aware encoding
— minimising ones instead — is an open item in ROADMAP.md.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LvstlInterface:
    """Electrical parameters of one ground-terminated LVSTL lane.

    Parameters
    ----------
    vddq:
        I/O supply voltage in volts (1.1 V for LPDDR4).
    r_termination:
        On-die termination resistance to VSSQ in ohms.
    r_pullup:
        Driver pull-up (output) resistance in ohms.
    name:
        JEDEC-style label for reports.
    """

    vddq: float
    r_termination: float = 60.0
    r_pullup: float = 40.0
    name: str = "LVSTL"

    def __post_init__(self) -> None:
        if self.vddq <= 0:
            raise ValueError(f"vddq must be positive, got {self.vddq}")
        if self.r_termination <= 0 or self.r_pullup <= 0:
            raise ValueError("termination/driver resistances must be positive")

    # -- DC behaviour ------------------------------------------------------
    @property
    def costly_level(self) -> str:
        """Ones burn DC power on a ground-terminated line."""
        return "one"

    @property
    def termination_current(self) -> float:
        """DC current in amperes while a one is driven."""
        return self.vddq / (self.r_pullup + self.r_termination)

    def dc_current(self, level: int) -> float:
        """Termination current per driven level: zeros are free."""
        if level not in (0, 1):
            raise ValueError(f"level must be 0 or 1, got {level}")
        return self.termination_current if level == 1 else 0.0

    @property
    def one_power(self) -> float:
        """Static power in watts dissipated while transmitting a one."""
        return self.vddq * self.termination_current

    @property
    def v_high(self) -> float:
        """Output-high voltage set by the resistor divider (VOH)."""
        return self.vddq * self.r_termination / (self.r_pullup + self.r_termination)

    @property
    def v_swing(self) -> float:
        """Signal swing: zero sits at ground, one at VOH."""
        return self.v_high

    # -- derived energies ----------------------------------------------------
    def energy_per_zero(self, data_rate_hz: float) -> float:
        """Energy of holding a zero for one bit time — free on LVSTL."""
        if data_rate_hz <= 0:
            raise ValueError(f"data rate must be positive, got {data_rate_hz}")
        return 0.0

    def energy_per_one(self, data_rate_hz: float) -> float:
        """Energy in joules to hold a one for one bit time."""
        if data_rate_hz <= 0:
            raise ValueError(f"data rate must be positive, got {data_rate_hz}")
        return self.one_power / data_rate_hz

    def energy_per_transition(self, c_load_farads: float) -> float:
        """Dynamic energy of one transition across the (small) LVSTL swing."""
        if c_load_farads <= 0:
            raise ValueError(
                f"load capacitance must be positive, got {c_load_farads}")
        return 0.5 * self.vddq * self.v_swing * c_load_farads


def lvstl11(r_termination: float = 60.0, r_pullup: float = 40.0) -> LvstlInterface:
    """LVSTL11 — the 1.1 V LPDDR4 interface (JESD209-4)."""
    return LvstlInterface(vddq=1.1, r_termination=r_termination,
                          r_pullup=r_pullup, name="LVSTL11")
