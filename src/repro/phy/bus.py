"""Stateful multi-lane memory bus simulator.

:class:`MemoryBus` models the write path of a memory channel: a configurable
number of byte lanes (x8/x16/x32 devices), each with its own DBI pin and an
independent DBI encoder instance.  Payloads are striped across lanes the
way a memory controller does (lane *j* carries bytes ``j, j+lanes,
j+2·lanes, ...``), encoded per lane with bus state threaded across bursts,
and accounted with the per-wire counters of :mod:`repro.phy.lane` and the
energy model of :mod:`repro.phy.power`.

Since PR 8 the write path is batched like the controller's: on the
``vector`` backend each lane's burst train is encoded in one
:meth:`~repro.core.schemes.DbiScheme.batch_flags` call (state threaded
across bursts — :func:`~repro.core.vectorized.try_vector_pack` gates the
fast path, so chained transmission of a state-dependent scheme falls back
to the per-burst reference), activity is tallied array-at-a-time, and the
per-wire counters update through
:meth:`~repro.phy.lane.LaneGroup.drive_words_batch`.  Both paths produce
bit-identical statistics, energies and wire state (enforced by
``tests/phy/test_bus.py``).

This is the substrate for trace-driven evaluation: everything the
figure-level benchmarks measure on synthetic bursts can also be measured on
realistic multi-burst transfers here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.bitops import ALL_ONES_WORD
from ..core.burst import Burst, chunk_bytes
from ..core.schemes import DbiScheme, EncodedBurst
from ..core.vectorized import batch_activity, flags_to_words, try_vector_pack
from .lane import LaneGroup
from .power import InterfaceEnergyModel

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on the no-NumPy CI leg
    _np = None


@dataclass
class BusStatistics:
    """Aggregate activity and energy of everything sent over the bus."""

    bursts: int = 0
    beats: int = 0
    zeros: int = 0
    transitions: int = 0
    energy_joules: float = 0.0

    def merge(self, other: "BusStatistics") -> "BusStatistics":
        """Element-wise sum (for combining lanes or runs)."""
        return BusStatistics(
            bursts=self.bursts + other.bursts,
            beats=self.beats + other.beats,
            zeros=self.zeros + other.zeros,
            transitions=self.transitions + other.transitions,
            energy_joules=self.energy_joules + other.energy_joules,
        )

    @property
    def zeros_per_burst(self) -> float:
        """Mean zeros per burst."""
        return self.zeros / self.bursts if self.bursts else 0.0

    @property
    def transitions_per_burst(self) -> float:
        """Mean transitions per burst."""
        return self.transitions / self.bursts if self.bursts else 0.0

    @property
    def energy_per_burst(self) -> float:
        """Mean energy per burst in joules."""
        return self.energy_joules / self.bursts if self.bursts else 0.0


@dataclass
class ByteLane:
    """One byte lane: encoder + wire state + counters."""

    scheme: DbiScheme
    group: LaneGroup = field(default_factory=LaneGroup)
    state_word: int = ALL_ONES_WORD
    stats: BusStatistics = field(default_factory=BusStatistics)

    def send_burst(self, burst: Burst,
                   energy_model: Optional[InterfaceEnergyModel]) -> EncodedBurst:
        """Encode and transmit one burst, updating wire state and counters."""
        encoded = self.scheme.encode(burst, prev_word=self.state_word)
        n_transitions, n_zeros = encoded.activity()
        self.group.drive_words(encoded.words)
        self.state_word = encoded.last_word()
        self.stats.bursts += 1
        self.stats.beats += len(encoded)
        self.stats.zeros += n_zeros
        self.stats.transitions += n_transitions
        if energy_model is not None:
            self.stats.energy_joules += energy_model.burst_energy(
                n_transitions, n_zeros)
        return encoded

    def send_bursts(self, bursts: Sequence[Burst],
                    energy_model: Optional[InterfaceEnergyModel],
                    backend: Optional[str] = None,
                    word_impl: str = "auto") -> None:
        """Encode and transmit a burst train, state threaded across bursts.

        The batched twin of calling :meth:`send_burst` in a loop: when
        :func:`~repro.core.vectorized.try_vector_pack` admits the train
        (vector backend, batch kernel, state-free flags, rectangular
        bursts), flags are computed array-at-a-time, per-burst activity
        is tallied with the shared popcount table, energy accrues
        per burst in transmission order, and the per-wire counters
        update via :meth:`~repro.phy.lane.LaneGroup.drive_words_batch`
        — all bit-identical to the scalar loop, which remains the
        fallback (and the differential reference).
        """
        burst_list = list(bursts)
        if not burst_list:
            return
        data = try_vector_pack(self.scheme, burst_list, backend=backend,
                               chained=True)
        if data is None:
            for burst in burst_list:
                self.send_burst(burst, energy_model)
            return
        batch, length = data.shape
        prev = _np.full(batch, self.state_word, dtype=_np.int64)
        flags = self.scheme.batch_flags(data, prev)
        words = flags_to_words(data, flags)
        boundaries = _np.empty(batch, dtype=_np.int64)
        boundaries[0] = self.state_word
        boundaries[1:] = words[:-1, -1]
        per_transitions, per_zeros = batch_activity(words, boundaries)
        self.group.drive_words_batch(words.ravel().tolist(),
                                     word_impl=word_impl)
        self.state_word = int(words[-1, -1])
        self.stats.bursts += batch
        self.stats.beats += batch * length
        self.stats.zeros += int(per_zeros.sum())
        self.stats.transitions += int(per_transitions.sum())
        if energy_model is not None:
            # Same per-burst accrual (and float summation order) as the
            # scalar path.
            for n_transitions, n_zeros in zip(per_transitions.tolist(),
                                              per_zeros.tolist()):
                self.stats.energy_joules += energy_model.burst_energy(
                    n_transitions, n_zeros)


class MemoryBus:
    """A multi-byte-lane memory channel with per-lane DBI encoding.

    Parameters
    ----------
    scheme_factory:
        Zero-argument callable producing one encoder per lane (lanes must
        not share mutable encoder state).
    byte_lanes:
        Number of 8-bit lanes (4 for a x32 graphics device).
    burst_length:
        Beats per burst (JEDEC BL8 by default).
    energy_model:
        Optional operating point for energy accounting.
    backend:
        Execution backend for the per-lane encode
        (``auto``/``reference``/``vector``, defaulting from
        ``REPRO_BACKEND``); statistics are bit-identical either way.
    word_impl:
        Word representation of the batched per-wire tallies
        (:func:`repro.hw.bitsim.get_kernel`).

    >>> from repro.baselines import DbiDc
    >>> bus = MemoryBus(DbiDc, byte_lanes=2, burst_length=4)
    >>> stats = bus.write(bytes(range(16)))
    >>> stats.bursts
    4
    """

    def __init__(self, scheme_factory, byte_lanes: int = 4,
                 burst_length: int = 8,
                 energy_model: Optional[InterfaceEnergyModel] = None,
                 backend: Optional[str] = None,
                 word_impl: str = "auto"):
        if byte_lanes < 1:
            raise ValueError(f"byte_lanes must be >= 1, got {byte_lanes}")
        if burst_length < 1:
            raise ValueError(f"burst_length must be >= 1, got {burst_length}")
        self.byte_lanes = byte_lanes
        self.burst_length = burst_length
        self.energy_model = energy_model
        self.backend = backend
        self.word_impl = word_impl
        self.lanes: List[ByteLane] = [ByteLane(scheme=scheme_factory())
                                      for _ in range(byte_lanes)]

    def write(self, payload: Sequence[int]) -> BusStatistics:
        """Stripe *payload* across lanes, encode and transmit everything.

        Each lane's burst train goes through the batched
        :meth:`ByteLane.send_bursts` path (tail bursts are padded
        idle-high by :func:`~repro.core.burst.chunk_bytes`, so the train
        is always rectangular).  Returns the statistics of **this call**
        (the per-lane cumulative counters keep running across calls).
        """
        before = self.statistics()
        for index, lane in enumerate(self.lanes):
            lane_bytes = list(payload[index::self.byte_lanes])
            if not lane_bytes:
                continue
            lane.send_bursts(chunk_bytes(lane_bytes, self.burst_length),
                             self.energy_model, backend=self.backend,
                             word_impl=self.word_impl)
        after = self.statistics()
        return BusStatistics(
            bursts=after.bursts - before.bursts,
            beats=after.beats - before.beats,
            zeros=after.zeros - before.zeros,
            transitions=after.transitions - before.transitions,
            energy_joules=after.energy_joules - before.energy_joules,
        )

    def write_bursts(self, bursts: Sequence[Burst], lane: int = 0) -> BusStatistics:
        """Send pre-formed bursts down one lane (no striping).

        Energy is accounted per burst exactly like :meth:`write` /
        :meth:`ByteLane.send_burst`, so the returned call delta always
        matches the growth of the cumulative lane statistics (it used to
        be priced once on the call totals, which drifted from the
        per-burst accrual by float rounding).
        """
        if not 0 <= lane < self.byte_lanes:
            raise IndexError(f"lane {lane} out of range [0, {self.byte_lanes})")
        target = self.lanes[lane]
        before = BusStatistics(**vars(target.stats))
        target.send_bursts(list(bursts), self.energy_model,
                           backend=self.backend, word_impl=self.word_impl)
        after = target.stats
        return BusStatistics(
            bursts=after.bursts - before.bursts,
            beats=after.beats - before.beats,
            zeros=after.zeros - before.zeros,
            transitions=after.transitions - before.transitions,
            energy_joules=after.energy_joules - before.energy_joules,
        )

    def statistics(self) -> BusStatistics:
        """Cumulative statistics over all lanes since construction/reset."""
        total = BusStatistics()
        for lane in self.lanes:
            total = total.merge(lane.stats)
        return total

    def reset(self) -> None:
        """Return all lanes to idle-high and clear every counter."""
        for lane in self.lanes:
            lane.group.reset()
            lane.state_word = ALL_ONES_WORD
            lane.stats = BusStatistics()
